//! System A: a disk-based row store with native bitemporal support.
//!
//! Archetype (paper §2, §5.2): horizontal partitioning into a *current
//! table* and a *history table* with identical schemas; superseded versions
//! move to the history table **synchronously** at update time ("System A
//! saves data instantly to the history tables"); a system-defined
//! primary-key index exists on the current table only; the history table has
//! no indexes unless the tuning study adds them.

use crate::api::{
    AppSpec, BitemporalEngine, ColRange, IndexKind, ScanOutput, SysSpec, TableStats, TuningConfig,
};
use crate::catalog::Catalog;
use crate::index::{IndexDef, IndexedCol, OrderedIndex};
use crate::morsel::ScanMetrics;
use crate::rowscan::{merge_access, scan_partition, PartitionView, ScanSite};
use crate::sequenced::split_for_portion;
use crate::version::Version;
use bitempo_core::{
    obs, AppPeriod, Error, Key, Result, Row, SysPeriod, SysTime, TableDef, TableId, TemporalClass,
    Value,
};
use bitempo_storage::{Heap, SlotId};
use bitempo_tindex::{IndexFootprint, TemporalIndex};
use std::collections::HashMap;

#[derive(Debug, Default)]
struct TableA {
    current: Heap<Version>,
    history: Heap<Version>,
    /// System-defined PK index over the current partition.
    pk: Option<OrderedIndex>,
    /// Tuning indexes over the current partition.
    cur_indexes: Vec<OrderedIndex>,
    /// Tuning indexes over the history partition. The first one whose
    /// leading columns are the key doubles as the history "PK" access path.
    hist_indexes: Vec<OrderedIndex>,
    hist_key_index: Option<usize>,
    /// Temporal index over the history partition, maintained at close time
    /// (only with [`TuningConfig::temporal_index`]).
    tindex: Option<TemporalIndex>,
    /// Temporal index over the current partition, maintained at insert and
    /// close time. Without it, every time-travel scan pays a full pass over
    /// the open versions even when the probe instant predates almost all of
    /// them.
    cur_tindex: Option<TemporalIndex>,
    /// Open versions per key, for DML resolution.
    key_map: HashMap<Key, Vec<u64>>,
}

/// Rebuilds a history-partition temporal index from an existing heap —
/// shared by Systems A and B, whose history partitions are identical heaps
/// of closed versions.
pub(crate) fn build_history_tindex(name: &str, history: &Heap<Version>) -> TemporalIndex {
    let mut tix = TemporalIndex::new(
        format!("tx_hist_{name}"),
        bitempo_tindex::timeline::DEFAULT_CHECKPOINT_EVERY,
    );
    for (slot, v) in history.iter() {
        tix.insert(u64::from(slot.0), v.app, v.sys);
    }
    tix.prepare();
    tix
}

/// Rebuilds a current-partition temporal index from a heap of (mostly
/// open) versions, at tuning time. System A's current heap reuses slots, so
/// correctness leans on the candidate-superset contract: replay is causal,
/// and the scan re-checks every candidate against its authoritative period.
fn build_current_tindex(name: &str, current: &Heap<Version>) -> TemporalIndex {
    let mut tix = TemporalIndex::new(
        format!("tx_cur_{name}"),
        bitempo_tindex::timeline::DEFAULT_CHECKPOINT_EVERY,
    );
    for (slot, v) in current.iter() {
        tix.insert(u64::from(slot.0), v.app, v.sys);
    }
    tix.prepare();
    tix
}

/// The System A engine. See module docs.
#[derive(Debug, Default)]
pub struct SystemA {
    catalog: Catalog,
    tables: Vec<TableA>,
    now: SysTime,
    tuning: TuningConfig,
}

impl SystemA {
    /// Creates an empty engine.
    pub fn new() -> SystemA {
        SystemA::default()
    }

    fn pending(&self) -> SysTime {
        self.now.next()
    }

    fn insert_version(&mut self, table: TableId, version: Version) {
        let def_key = self.catalog.def(table).key.clone();
        let key = Key::from_row(&version.row, &def_key);
        let t = self.table_mut(table);
        let slot64 = u64::from(t.current.insert(version.clone()).0);
        if let Some(pk) = &mut t.pk {
            pk.insert(&version, slot64);
        }
        for ix in &mut t.cur_indexes {
            ix.insert(&version, slot64);
        }
        t.key_map.entry(key).or_default().push(slot64);
        if let Some(tix) = &mut t.cur_tindex {
            tix.insert(slot64, version.app, version.sys);
        }
    }

    /// Closes the open version in `slot` at `end`, moving it to history.
    /// Versions whose system period would be empty (created and superseded
    /// inside the same transaction) are discarded: they were never visible.
    fn close_version(&mut self, table: TableId, slot64: u64, end: SysTime) -> Result<Version> {
        let def_key = self.catalog.def(table).key.clone();
        let nontemporal = self.catalog.def(table).temporal == TemporalClass::NonTemporal;
        let t = self.table_mut(table);
        let slot = SlotId(slot64 as u32);
        let Some(mut v) = t.current.remove(slot) else {
            return Err(Error::Internal(format!(
                "closing slot {slot64} with no live version"
            )));
        };
        if let Some(tix) = &mut t.cur_tindex {
            // The slot leaves the current partition whatever its fate
            // (archived, discarded, or re-inserted in place): invalidating
            // here keeps later probes from resurrecting it, and probes
            // before `end` re-check whatever occupies the slot by then.
            tix.close(slot64, end);
        }
        if let Some(pk) = &mut t.pk {
            pk.remove(&v, slot64);
        }
        for ix in &mut t.cur_indexes {
            ix.remove(&v, slot64);
        }
        let key = Key::from_row(&v.row, &def_key);
        if let Some(slots) = t.key_map.get_mut(&key) {
            slots.retain(|&s| s != slot64);
        }
        let closed = v.clone();
        v.sys = SysPeriod::new(v.sys.start, end);
        if !nontemporal && !v.sys.is_empty() {
            let hslot = t.history.insert(v.clone());
            let h64 = u64::from(hslot.0);
            for ix in &mut t.hist_indexes {
                ix.insert(&v, h64);
            }
            if let Some(tix) = &mut t.tindex {
                tix.insert(h64, v.app, v.sys);
            }
        }
        Ok(closed)
    }

    fn open_slots_of_key(&self, table: TableId, key: &Key) -> Vec<u64> {
        self.table(table)
            .key_map
            .get(key)
            .cloned()
            .unwrap_or_default()
    }

    /// `TableId`s are issued densely by the catalog, so indexing with one it
    /// handed out cannot go out of bounds.
    fn table(&self, table: TableId) -> &TableA {
        // tblint: allow(TB004) TableId is catalog-issued and dense; sole indexing point for reads
        &self.tables[table.0 as usize]
    }

    fn table_mut(&mut self, table: TableId) -> &mut TableA {
        // tblint: allow(TB004) TableId is catalog-issued and dense; sole indexing point for writes
        &mut self.tables[table.0 as usize]
    }
}

/// Applies a sequenced update/delete/overwrite to one engine via its
/// close/insert primitives. Shared verbatim by Systems A, B and D through a
/// tiny adapter trait, so the logical semantics cannot drift apart.
pub(crate) fn sequenced_dml<E: SequencedOps>(
    engine: &mut E,
    table: TableId,
    key: &Key,
    portion: Option<AppPeriod>,
    new_values: Option<&[(usize, Value)]>, // None = delete
) -> Result<usize> {
    let def = engine.def(table).clone();
    if def.temporal != TemporalClass::Bitemporal && portion.is_some() {
        return Err(Error::Unsupported(format!(
            "FOR PORTION OF on table {} without application time",
            def.name
        )));
    }
    let portion = portion.unwrap_or(AppPeriod::ALL);
    let pending = engine.pending_time();
    let slots = engine.open_slots(table, key);
    if slots.is_empty() {
        return Ok(0);
    }
    let mut affected = 0;
    for slot in slots {
        let Some(v) = engine.peek(table, slot) else {
            continue;
        };
        let Some(split) = split_for_portion(v.app, portion) else {
            continue;
        };
        affected += 1;
        let old = engine.close(table, slot, pending)?;
        if def.temporal == TemporalClass::NonTemporal {
            // Non-versioned tables update in place (no history, no residue).
            if let Some(updates) = new_values {
                engine.insert_version_at(
                    table,
                    Version {
                        row: old.row.with_all(updates),
                        app: old.app,
                        sys: old.sys,
                    },
                );
            }
            continue;
        }
        for residue in &split.residues {
            engine.insert_version_at(
                table,
                Version {
                    row: old.row.clone(),
                    app: *residue,
                    sys: SysPeriod::since(pending),
                },
            );
        }
        if let Some(updates) = new_values {
            engine.insert_version_at(
                table,
                Version {
                    row: old.row.with_all(updates),
                    app: split.affected,
                    sys: SysPeriod::since(pending),
                },
            );
        }
    }
    Ok(affected)
}

/// Overwrite of the application period (paper Table 2, "Overwrite
/// App.Time"): all open versions of the key are superseded by a single
/// version, carrying the values of the latest (by application start)
/// version, valid for `period`.
pub(crate) fn overwrite_period<E: SequencedOps>(
    engine: &mut E,
    table: TableId,
    key: &Key,
    period: AppPeriod,
) -> Result<usize> {
    let def = engine.def(table).clone();
    if def.temporal != TemporalClass::Bitemporal {
        return Err(Error::Unsupported(format!(
            "application-period overwrite on table {}",
            def.name
        )));
    }
    if period.is_empty() {
        return Err(Error::EmptyPeriod(format!("{period}")));
    }
    let pending = engine.pending_time();
    let slots = engine.open_slots(table, key);
    if slots.is_empty() {
        return Err(Error::KeyNotFound(format!("{key} in {}", def.name)));
    }
    let mut representative: Option<Version> = None;
    let n = slots.len();
    for slot in slots {
        let closed = engine.close(table, slot, pending)?;
        let better = representative
            .as_ref()
            .is_none_or(|r| closed.app.start >= r.app.start);
        if better {
            representative = Some(closed);
        }
    }
    let Some(rep) = representative else {
        return Err(Error::Internal(
            "overwrite closed no versions despite a non-empty slot list".into(),
        ));
    };
    engine.insert_version_at(
        table,
        Version {
            row: rep.row,
            app: period,
            sys: SysPeriod::since(pending),
        },
    );
    Ok(n)
}

/// The close/insert primitives sequenced DML needs from an engine.
pub(crate) trait SequencedOps {
    fn def(&self, table: TableId) -> &TableDef;
    fn pending_time(&self) -> SysTime;
    fn open_slots(&self, table: TableId, key: &Key) -> Vec<u64>;
    fn peek(&self, table: TableId, slot: u64) -> Option<Version>;
    /// Closes the open version at `slot` and returns it (pre-close periods).
    /// Closing a slot with no live version is an engine bug, reported as
    /// [`Error::Internal`] rather than a panic.
    fn close(&mut self, table: TableId, slot: u64, end: SysTime) -> Result<Version>;
    fn insert_version_at(&mut self, table: TableId, version: Version);
}

impl SequencedOps for SystemA {
    fn def(&self, table: TableId) -> &TableDef {
        self.catalog.def(table)
    }
    fn pending_time(&self) -> SysTime {
        self.pending()
    }
    fn open_slots(&self, table: TableId, key: &Key) -> Vec<u64> {
        self.open_slots_of_key(table, key)
    }
    fn peek(&self, table: TableId, slot: u64) -> Option<Version> {
        self.table(table).current.get(SlotId(slot as u32)).cloned()
    }
    fn close(&mut self, table: TableId, slot: u64, end: SysTime) -> Result<Version> {
        self.close_version(table, slot, end)
    }
    fn insert_version_at(&mut self, table: TableId, version: Version) {
        self.insert_version(table, version);
    }
}

impl BitemporalEngine for SystemA {
    fn name(&self) -> &'static str {
        "System A"
    }

    fn architecture(&self) -> &'static str {
        "row store; current + history tables (same schema); synchronous history writes; \
         system PK index on current table only"
    }

    fn create_table(&mut self, def: TableDef) -> Result<TableId> {
        let pk = (!def.key.is_empty()).then(|| {
            OrderedIndex::new(IndexDef {
                name: format!("pk_{}", def.name),
                cols: def.key.iter().map(|&c| IndexedCol::Value(c)).collect(),
                kind: IndexKind::BTree,
            })
        });
        let id = self.catalog.create(def)?;
        self.tables.push(TableA {
            pk,
            ..TableA::default()
        });
        Ok(id)
    }

    fn resolve(&self, name: &str) -> Result<TableId> {
        self.catalog.resolve(name)
    }

    fn table_names(&self) -> Vec<String> {
        self.catalog.iter().map(|(_, d)| d.name.clone()).collect()
    }

    fn table_def(&self, table: TableId) -> &TableDef {
        self.catalog.def(table)
    }

    fn apply_tuning(&mut self, tuning: &TuningConfig) -> Result<()> {
        self.tuning = tuning.clone();
        let defs: Vec<(TableId, TableDef)> =
            self.catalog.iter().map(|(i, d)| (i, d.clone())).collect();
        for (id, def) in defs {
            let t = self.table_mut(id);
            t.cur_indexes.clear();
            t.hist_indexes.clear();
            t.hist_key_index = None;
            let mut cur_defs = Vec::new();
            let mut hist_defs = Vec::new();
            build_tuning_defs(
                &def,
                tuning,
                &mut cur_defs,
                &mut hist_defs,
                &mut t.hist_key_index,
            )?;
            t.cur_indexes = cur_defs.into_iter().map(OrderedIndex::new).collect();
            t.hist_indexes = hist_defs.into_iter().map(OrderedIndex::new).collect();
            // Populate from existing data.
            let entries: Vec<(u64, Version)> = t
                .current
                .iter()
                .map(|(s, v)| (u64::from(s.0), v.clone()))
                .collect();
            for ix in &mut t.cur_indexes {
                for (slot, v) in &entries {
                    ix.insert(v, *slot);
                }
            }
            let entries: Vec<(u64, Version)> = t
                .history
                .iter()
                .map(|(s, v)| (u64::from(s.0), v.clone()))
                .collect();
            for ix in &mut t.hist_indexes {
                for (slot, v) in &entries {
                    ix.insert(v, *slot);
                }
            }
            t.tindex = (tuning.temporal_index && def.has_system_time())
                .then(|| build_history_tindex(&def.name, &t.history));
            t.cur_tindex = (tuning.temporal_index && def.has_system_time())
                .then(|| build_current_tindex(&def.name, &t.current));
        }
        Ok(())
    }

    fn insert(&mut self, table: TableId, row: Row, app: Option<AppPeriod>) -> Result<()> {
        let def = self.catalog.def(table);
        if row.arity() != def.schema.arity() {
            return Err(Error::Invalid(format!(
                "arity {} vs schema {} for {}",
                row.arity(),
                def.schema.arity(),
                def.name
            )));
        }
        let app = match (def.temporal, app) {
            (TemporalClass::Bitemporal, Some(p)) if p.is_empty() => {
                return Err(Error::EmptyPeriod(format!("{p}")))
            }
            (TemporalClass::Bitemporal, Some(p)) => p,
            (TemporalClass::Bitemporal, None) => AppPeriod::ALL,
            (_, Some(_)) => {
                return Err(Error::Unsupported(format!(
                    "application period on table {}",
                    def.name
                )))
            }
            (_, None) => AppPeriod::ALL,
        };
        let sys = if def.temporal == TemporalClass::NonTemporal {
            SysPeriod::ALL
        } else {
            SysPeriod::since(self.pending())
        };
        self.insert_version(table, Version { row, app, sys });
        Ok(())
    }

    fn update(
        &mut self,
        table: TableId,
        key: &Key,
        updates: &[(usize, Value)],
        portion: Option<AppPeriod>,
    ) -> Result<usize> {
        sequenced_dml(self, table, key, portion, Some(updates))
    }

    fn delete(&mut self, table: TableId, key: &Key, portion: Option<AppPeriod>) -> Result<usize> {
        sequenced_dml(self, table, key, portion, None)
    }

    fn overwrite_app_period(
        &mut self,
        table: TableId,
        key: &Key,
        period: AppPeriod,
    ) -> Result<usize> {
        overwrite_period(self, table, key, period)
    }

    fn commit(&mut self) -> SysTime {
        self.now = self.now.next();
        self.now
    }

    fn now(&self) -> SysTime {
        self.now
    }

    fn advance_clock(&mut self, to: SysTime) {
        if self.now < to {
            self.now = to;
        }
    }

    fn scan(
        &self,
        table: TableId,
        sys: &SysSpec,
        app: &AppSpec,
        preds: &[ColRange],
    ) -> Result<ScanOutput> {
        let def = self.catalog.def(table);
        let t = self.table(table);
        let exec = self.tuning.exec();
        let _span = obs::span_dyn("engine", || format!("System A scan {}", def.name));
        let mut rows = Vec::new();
        let mut paths = Vec::new();
        let mut metrics = ScanMetrics::default();
        let site = |partition| ScanSite {
            engine: "System A",
            table: &def.name,
            partition,
        };
        let cur_view = PartitionView {
            source: &t.current,
            pk: t.pk.as_ref(),
            indexes: &t.cur_indexes,
            gist: None,
            tindex: t.cur_tindex.as_ref(),
        };
        paths.push(scan_partition(
            site("current"),
            &cur_view,
            def,
            sys,
            app,
            preds,
            self.now,
            self.tuning.adaptive,
            exec,
            &mut rows,
            &mut metrics,
        )?);
        if !sys.current_only() && def.has_system_time() {
            let hist_view = PartitionView {
                source: &t.history,
                pk: t.hist_key_index.and_then(|i| t.hist_indexes.get(i)),
                indexes: &t.hist_indexes,
                gist: None,
                tindex: t.tindex.as_ref(),
            };
            paths.push(scan_partition(
                site("history"),
                &hist_view,
                def,
                sys,
                app,
                preds,
                self.now,
                self.tuning.adaptive,
                exec,
                &mut rows,
                &mut metrics,
            )?);
        }
        let out = ScanOutput {
            access: merge_access(paths.clone()),
            partition_paths: paths,
            rows,
            metrics,
        };
        #[cfg(debug_assertions)]
        crate::api::validate_scan_output(def, sys, app, preds, &out)
            .unwrap_or_else(|msg| panic!("System A scan postcondition: {msg}"));
        Ok(out)
    }

    fn lookup_key(
        &self,
        table: TableId,
        key: &Key,
        sys: &SysSpec,
        app: &AppSpec,
    ) -> Result<ScanOutput> {
        let def = self.catalog.def(table);
        let preds: Vec<ColRange> = def
            .key
            .iter()
            .zip(key.to_values())
            .map(|(&c, v)| ColRange::eq(c, v))
            .collect();
        self.scan(table, sys, app, &preds)
    }

    fn stats(&self, table: TableId) -> TableStats {
        let t = self.table(table);
        TableStats {
            current_rows: t.current.len(),
            history_rows: t.history.len(),
        }
    }

    fn supports_manual_system_time(&self) -> bool {
        false
    }

    fn bulk_load(
        &mut self,
        _table: TableId,
        _versions: Vec<(Row, AppPeriod, SysPeriod)>,
    ) -> Result<()> {
        Err(Error::Unsupported(
            "bulk load with manual system time".into(),
        ))
    }

    fn checkpoint(&mut self) {
        // History writes are synchronous (§5.2): nothing staged to flush.
        // The temporal index still uses the quiescent point to sort its
        // interval endpoint lists.
        for t in &mut self.tables {
            if let Some(tix) = &mut t.tindex {
                tix.prepare();
            }
            if let Some(tix) = &mut t.cur_tindex {
                tix.prepare();
            }
        }
    }

    fn temporal_index_footprint(&self) -> IndexFootprint {
        self.tables
            .iter()
            .flat_map(|t| t.tindex.iter().chain(t.cur_tindex.iter()))
            .fold(IndexFootprint::default(), |acc, tix| {
                acc.merged(tix.footprint())
            })
    }

    fn snapshot_versions(&self, table: TableId) -> Result<Vec<Version>> {
        let t = self.table(table);
        let mut out: Vec<Version> = t.current.iter().map(|(_, v)| v.clone()).collect();
        out.extend(t.history.iter().map(|(_, v)| v.clone()));
        Ok(out)
    }

    fn restore(&mut self, table: TableId, versions: Vec<Version>, now: SysTime) -> Result<()> {
        let def = self.catalog.def(table);
        let pk = (!def.key.is_empty()).then(|| {
            OrderedIndex::new(IndexDef {
                name: format!("pk_{}", def.name),
                cols: def.key.iter().map(|&c| IndexedCol::Value(c)).collect(),
                kind: IndexKind::BTree,
            })
        });
        *self.table_mut(table) = TableA {
            pk,
            ..TableA::default()
        };
        for v in versions {
            if v.sys.is_current() {
                // Open (and non-temporal) versions go through the normal
                // insert path so the PK index and key map are rebuilt.
                self.insert_version(table, v);
            } else {
                self.table_mut(table).history.insert(v);
            }
        }
        self.now = now;
        Ok(())
    }
}

/// Builds the tuning index definitions for one table — shared by Systems A
/// and B, which expose the same logical index surface (paper §5.1).
pub(crate) fn build_tuning_defs(
    def: &TableDef,
    tuning: &TuningConfig,
    cur: &mut Vec<IndexDef>,
    hist: &mut Vec<IndexDef>,
    hist_key_index: &mut Option<usize>,
) -> Result<()> {
    if tuning.time_index {
        if def.has_app_time() {
            cur.push(IndexDef {
                name: format!("ix_cur_app_{}", def.name),
                cols: vec![IndexedCol::AppStart],
                kind: IndexKind::BTree,
            });
            hist.push(IndexDef {
                name: format!("ix_hist_app_{}", def.name),
                cols: vec![IndexedCol::AppStart],
                kind: IndexKind::BTree,
            });
        }
        if def.has_system_time() {
            hist.push(IndexDef {
                name: format!("ix_hist_sys_{}", def.name),
                cols: vec![IndexedCol::SysStart],
                kind: IndexKind::BTree,
            });
        }
    }
    if tuning.key_time_index && def.has_system_time() && !def.key.is_empty() {
        let mut cols: Vec<IndexedCol> = def.key.iter().map(|&c| IndexedCol::Value(c)).collect();
        cols.push(IndexedCol::SysStart);
        *hist_key_index = Some(hist.len());
        hist.push(IndexDef {
            name: format!("ix_hist_key_{}", def.name),
            cols,
            kind: IndexKind::BTree,
        });
    }
    for (tname, cname) in &tuning.value_index {
        if *tname == def.name {
            let col = def.schema.col(cname)?;
            let d = IndexDef {
                name: format!("ix_val_{}_{}", def.name, cname),
                cols: vec![IndexedCol::Value(col)],
                kind: IndexKind::BTree,
            };
            cur.push(d.clone());
            if def.has_system_time() {
                hist.push(d);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::AccessPath;
    use crate::testutil::{bitemp_table, insert_rows, simple_row};
    use bitempo_core::{AppDate, Period};

    #[test]
    fn insert_commit_scan_current() {
        let mut e = SystemA::new();
        let t = e.create_table(bitemp_table("t")).unwrap();
        insert_rows(&mut e, t, &[(1, 100), (2, 200)]);
        let out = e.scan(t, &SysSpec::Current, &AppSpec::All, &[]).unwrap();
        assert_eq!(out.rows.len(), 2);
        assert_eq!(e.stats(t).history_rows, 0);
    }

    #[test]
    fn update_moves_old_version_to_history() {
        let mut e = SystemA::new();
        let t = e.create_table(bitemp_table("t")).unwrap();
        insert_rows(&mut e, t, &[(1, 100)]);
        let t1 = e.now();
        let n = e
            .update(t, &Key::int(1), &[(1, Value::Int(999))], None)
            .unwrap();
        e.commit();
        assert_eq!(n, 1);
        let s = e.stats(t);
        assert_eq!((s.current_rows, s.history_rows), (1, 1));
        // Time travel to before the update sees the old value.
        let out = e.scan(t, &SysSpec::AsOf(t1), &AppSpec::All, &[]).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0].get(1), &Value::Int(100));
        // Current sees the new value.
        let out = e.scan(t, &SysSpec::Current, &AppSpec::All, &[]).unwrap();
        assert_eq!(out.rows[0].get(1), &Value::Int(999));
    }

    #[test]
    fn sequenced_update_splits_portion() {
        let mut e = SystemA::new();
        let t = e.create_table(bitemp_table("t")).unwrap();
        e.insert(
            t,
            simple_row(1, 100),
            Some(Period::new(AppDate(0), AppDate(100))),
        )
        .unwrap();
        e.commit();
        let portion = Period::new(AppDate(20), AppDate(40));
        e.update(t, &Key::int(1), &[(1, Value::Int(777))], Some(portion))
            .unwrap();
        e.commit();
        let out = e.scan(t, &SysSpec::Current, &AppSpec::All, &[]).unwrap();
        assert_eq!(out.rows.len(), 3, "overlap + two residues");
        // AS OF app day 30 → updated value; day 50 → original.
        let out = e
            .scan(t, &SysSpec::Current, &AppSpec::AsOf(AppDate(30)), &[])
            .unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0].get(1), &Value::Int(777));
        let out = e
            .scan(t, &SysSpec::Current, &AppSpec::AsOf(AppDate(50)), &[])
            .unwrap();
        assert_eq!(out.rows[0].get(1), &Value::Int(100));
    }

    #[test]
    fn delete_leaves_history_only() {
        let mut e = SystemA::new();
        let t = e.create_table(bitemp_table("t")).unwrap();
        insert_rows(&mut e, t, &[(1, 100)]);
        let before = e.now();
        e.delete(t, &Key::int(1), None).unwrap();
        e.commit();
        let out = e.scan(t, &SysSpec::Current, &AppSpec::All, &[]).unwrap();
        assert!(out.rows.is_empty());
        let out = e
            .scan(t, &SysSpec::AsOf(before), &AppSpec::All, &[])
            .unwrap();
        assert_eq!(out.rows.len(), 1);
    }

    #[test]
    fn overwrite_app_period_replaces_versions() {
        let mut e = SystemA::new();
        let t = e.create_table(bitemp_table("t")).unwrap();
        e.insert(
            t,
            simple_row(1, 1),
            Some(Period::new(AppDate(0), AppDate(10))),
        )
        .unwrap();
        e.insert(
            t,
            simple_row(1, 2),
            Some(Period::new(AppDate(10), AppDate(20))),
        )
        .unwrap();
        e.commit();
        let n = e
            .overwrite_app_period(t, &Key::int(1), Period::new(AppDate(5), AppDate(50)))
            .unwrap();
        e.commit();
        assert_eq!(n, 2);
        let out = e.scan(t, &SysSpec::Current, &AppSpec::All, &[]).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(
            out.rows[0].get(1),
            &Value::Int(2),
            "latest version's values"
        );
        assert_eq!(out.rows[0].get(2), &Value::Date(AppDate(5)));
    }

    #[test]
    fn explicit_as_of_now_still_visits_history() {
        let mut e = SystemA::new();
        let t = e.create_table(bitemp_table("t")).unwrap();
        insert_rows(&mut e, t, &[(1, 100)]);
        e.update(t, &Key::int(1), &[(1, Value::Int(2))], None)
            .unwrap();
        e.commit();
        let now = e.now();
        let implicit = e.scan(t, &SysSpec::Current, &AppSpec::All, &[]).unwrap();
        let explicit = e.scan(t, &SysSpec::AsOf(now), &AppSpec::All, &[]).unwrap();
        assert_eq!(implicit.rows, explicit.rows, "same answer...");
        assert_eq!(implicit.access, AccessPath::FullScan { partitions: 1 });
        assert_eq!(
            explicit.access,
            AccessPath::FullScan { partitions: 2 },
            "...but the explicit form pays for both partitions (Fig 6)"
        );
    }

    #[test]
    fn key_lookup_uses_pk_on_current_scan_on_history() {
        let mut e = SystemA::new();
        let t = e.create_table(bitemp_table("t")).unwrap();
        insert_rows(&mut e, t, &[(1, 100), (2, 200)]);
        e.update(t, &Key::int(1), &[(1, Value::Int(101))], None)
            .unwrap();
        e.commit();
        let cur = e
            .lookup_key(t, &Key::int(1), &SysSpec::Current, &AppSpec::All)
            .unwrap();
        assert!(matches!(cur.access, AccessPath::KeyLookup(_)));
        assert_eq!(cur.rows.len(), 1);
        let all = e
            .lookup_key(t, &Key::int(1), &SysSpec::All, &AppSpec::All)
            .unwrap();
        assert_eq!(all.rows.len(), 2, "current + historical version");
        // With Key+Time tuning the history side gains an index.
        e.apply_tuning(&TuningConfig::key_time()).unwrap();
        let all = e
            .lookup_key(t, &Key::int(1), &SysSpec::All, &AppSpec::All)
            .unwrap();
        assert!(matches!(all.access, AccessPath::KeyLookup(_)));
        assert_eq!(all.rows.len(), 2);
    }

    #[test]
    fn same_transaction_supersede_discards_invisible_version() {
        let mut e = SystemA::new();
        let t = e.create_table(bitemp_table("t")).unwrap();
        e.insert(t, simple_row(1, 1), None).unwrap();
        e.update(t, &Key::int(1), &[(1, Value::Int(2))], None)
            .unwrap();
        e.commit();
        let s = e.stats(t);
        assert_eq!(
            (s.current_rows, s.history_rows),
            (1, 0),
            "the never-visible intermediate version must not reach history"
        );
    }

    #[test]
    fn nontemporal_table_updates_in_place() {
        let mut e = SystemA::new();
        let t = e
            .create_table(crate::testutil::plain_table("region"))
            .unwrap();
        e.insert(t, simple_row(1, 5), None).unwrap();
        e.commit();
        e.update(t, &Key::int(1), &[(1, Value::Int(6))], None)
            .unwrap();
        e.commit();
        let s = e.stats(t);
        assert_eq!((s.current_rows, s.history_rows), (1, 0));
        let out = e.scan(t, &SysSpec::Current, &AppSpec::All, &[]).unwrap();
        assert_eq!(out.rows[0].get(1), &Value::Int(6));
        assert_eq!(out.rows[0].arity(), 2, "no period columns on non-temporal");
    }

    #[test]
    fn portion_on_nontemporal_is_rejected() {
        let mut e = SystemA::new();
        let t = e
            .create_table(crate::testutil::plain_table("region"))
            .unwrap();
        e.insert(t, simple_row(1, 5), None).unwrap();
        e.commit();
        let err = e.update(
            t,
            &Key::int(1),
            &[(1, Value::Int(6))],
            Some(Period::new(AppDate(0), AppDate(1))),
        );
        assert!(matches!(err, Err(Error::Unsupported(_))));
    }

    #[test]
    fn temporal_tuning_probes_history_and_matches_full_scan() {
        let mut e = SystemA::new();
        let t = e.create_table(bitemp_table("t")).unwrap();
        insert_rows(&mut e, t, &[(1, 0)]);
        for i in 0..8 {
            e.update(t, &Key::int(1), &[(1, Value::Int(i))], None)
                .unwrap();
            e.commit();
        }
        let early = e.now();
        for i in 0..200 {
            e.update(t, &Key::int(1), &[(1, Value::Int(100 + i))], None)
                .unwrap();
            e.commit();
        }
        let plain = e
            .scan(t, &SysSpec::AsOf(early), &AppSpec::All, &[])
            .unwrap();
        assert!(matches!(plain.access, AccessPath::FullScan { .. }));
        e.apply_tuning(&TuningConfig::temporal()).unwrap();
        // Maintenance after tuning: close_version keeps feeding the index.
        e.update(t, &Key::int(1), &[(1, Value::Int(999))], None)
            .unwrap();
        e.commit();
        let probed = e
            .scan(t, &SysSpec::AsOf(early), &AppSpec::All, &[])
            .unwrap();
        assert!(
            matches!(probed.access, AccessPath::TemporalProbe(_)),
            "expected a temporal probe, got {}",
            probed.access
        );
        assert!(probed.metrics.index_probes > 0);
        assert!(probed.metrics.index_hits > 0);
        assert_eq!(probed.rows, plain.rows);
    }
}
