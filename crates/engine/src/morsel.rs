//! Morsel-driven parallel scan execution.
//!
//! Sequential partition scans are split into fixed-size row-range *morsels*
//! (after Leis et al., "Morsel-Driven Parallelism", SIGMOD 2014) and executed
//! on a [`std::thread::scope`] worker pool. Workers pull morsels from a
//! shared atomic counter, so load balances automatically; each worker
//! produces `(morsel index, rows, metrics)` triples, and the results are
//! merged *in morsel order* — making parallel output byte-identical to a
//! sequential scan over the same ranges. The sequential path (one worker, or
//! a partition smaller than one morsel) iterates exactly the same morsel
//! ranges, so the per-scan [`ScanMetrics`] are also identical regardless of
//! worker count. The cross-engine equivalence tests rely on both properties.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Rows per morsel. Small enough to load-balance skewed partitions, large
/// enough that the per-morsel dispatch cost is negligible; partitions below
/// this size never spawn threads.
pub const MORSEL_ROWS: usize = 1024;

/// Counters collected by one scan, identical across worker counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanMetrics {
    /// Morsels dispatched across all sequentially-scanned partitions.
    pub morsels: u64,
    /// Version records examined (sequential morsels and index probes alike).
    pub rows_visited: u64,
    /// Examined versions rejected by the temporal specs or predicates.
    pub versions_pruned: u64,
    /// Slots resolved through an index (PK, B-Tree, or GiST) probe.
    pub index_probes: u64,
}

impl ScanMetrics {
    /// Accumulates `other` into `self` (all counters are additive).
    pub fn merge(&mut self, other: &ScanMetrics) {
        self.morsels += other.morsels;
        self.rows_visited += other.rows_visited;
        self.versions_pruned += other.versions_pruned;
        self.index_probes += other.index_probes;
    }
}

/// The morsel ranges covering `0..units`, in order.
pub fn morsel_ranges(units: usize) -> Vec<Range<usize>> {
    (0..units)
        .step_by(MORSEL_ROWS)
        .map(|start| start..(start + MORSEL_ROWS).min(units))
        .collect()
}

/// Runs `scan` over every morsel range covering `0..units`, on up to
/// `workers` threads, and returns the concatenated rows plus merged metrics.
///
/// `scan` is invoked once per morsel with a fresh output buffer and metrics;
/// results are concatenated in morsel order, so the returned row vector is
/// identical for every worker count. With `workers <= 1` (or a single
/// morsel) no threads are spawned and the morsels run inline, in order.
pub fn run_morsels<T, F>(units: usize, workers: usize, scan: F) -> (Vec<T>, ScanMetrics)
where
    T: Send,
    F: Fn(Range<usize>, &mut Vec<T>, &mut ScanMetrics) + Sync,
{
    let morsels = morsel_ranges(units);
    let mut metrics = ScanMetrics {
        morsels: morsels.len() as u64,
        ..ScanMetrics::default()
    };
    let workers = workers.max(1).min(morsels.len().max(1));

    if workers == 1 {
        let mut rows = Vec::new();
        for range in morsels {
            scan(range, &mut rows, &mut metrics);
        }
        return (rows, metrics);
    }

    let next = AtomicUsize::new(0);
    let drain = |produced: &mut Vec<(usize, Vec<T>, ScanMetrics)>| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(range) = morsels.get(i) else { break };
        let mut rows = Vec::new();
        let mut m = ScanMetrics::default();
        scan(range.clone(), &mut rows, &mut m);
        produced.push((i, rows, m));
    };
    // The calling thread participates as a worker, so only `workers - 1`
    // threads are spawned — at two workers that halves the dispatch cost.
    let mut done: Vec<(usize, Vec<T>, ScanMetrics)> = std::thread::scope(|s| {
        let handles: Vec<_> = (1..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut produced = Vec::new();
                    drain(&mut produced);
                    produced
                })
            })
            .collect();
        let mut all = Vec::new();
        drain(&mut all);
        for h in handles {
            all.extend(h.join().expect("morsel worker panicked"));
        }
        all
    });

    done.sort_unstable_by_key(|(i, _, _)| *i);
    let mut rows = Vec::with_capacity(done.iter().map(|(_, r, _)| r.len()).sum());
    for (_, mut chunk, m) in done {
        rows.append(&mut chunk);
        metrics.merge(&m);
    }
    (rows, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic scan emitting every even unit in the range.
    fn evens(range: Range<usize>, out: &mut Vec<usize>, m: &mut ScanMetrics) {
        for u in range {
            m.rows_visited += 1;
            if u % 2 == 0 {
                out.push(u);
            } else {
                m.versions_pruned += 1;
            }
        }
    }

    #[test]
    fn ranges_tile_the_unit_space() {
        assert!(morsel_ranges(0).is_empty());
        assert_eq!(morsel_ranges(1), vec![0..1]);
        assert_eq!(morsel_ranges(MORSEL_ROWS), vec![0..MORSEL_ROWS]);
        let r = morsel_ranges(MORSEL_ROWS * 2 + 5);
        assert_eq!(r.len(), 3);
        assert_eq!(r[2], MORSEL_ROWS * 2..MORSEL_ROWS * 2 + 5);
    }

    #[test]
    fn parallel_matches_sequential_rows_and_metrics() {
        let units = MORSEL_ROWS * 7 + 123;
        let (seq_rows, seq_m) = run_morsels(units, 1, evens);
        for workers in [2, 4, 16] {
            let (par_rows, par_m) = run_morsels(units, workers, evens);
            assert_eq!(par_rows, seq_rows, "workers={workers}");
            assert_eq!(par_m, seq_m, "workers={workers}");
        }
        assert_eq!(seq_m.morsels, 8);
        assert_eq!(seq_m.rows_visited, units as u64);
        assert_eq!(seq_rows.len(), units.div_ceil(2));
    }

    #[test]
    fn small_input_and_zero_workers_run_inline() {
        let (rows, m) = run_morsels(10, 0, evens);
        assert_eq!(rows, vec![0, 2, 4, 6, 8]);
        assert_eq!(m.morsels, 1);
        let (rows, m) = run_morsels(0, 4, evens);
        assert!(rows.is_empty());
        assert_eq!(m.morsels, 0);
    }
}
