//! Morsel-driven parallel scan execution.
//!
//! Sequential partition scans are split into fixed-size row-range *morsels*
//! (after Leis et al., "Morsel-Driven Parallelism", SIGMOD 2014) and executed
//! on a [`std::thread::scope`] worker pool. Workers pull morsels from a
//! shared atomic counter, so load balances automatically; each worker
//! produces `(morsel index, rows, metrics)` triples, and the results are
//! merged *in morsel order* — making parallel output byte-identical to a
//! sequential scan over the same ranges. The sequential path (one worker, or
//! a partition smaller than one morsel) iterates exactly the same morsel
//! ranges, so the per-scan [`ScanMetrics`] are also identical regardless of
//! worker count. The cross-engine equivalence tests rely on both properties.
//!
//! Panics inside a morsel are contained: every morsel body runs under
//! [`std::panic::catch_unwind`], a poisoned flag halts further dispatch, and
//! the scan surfaces [`Error::WorkerPanicked`] with the index of the first
//! panicking morsel instead of tearing down the thread scope. The
//! [`MorselExec`] config carries an injected-panic hook so each engine's
//! containment path can be exercised deterministically.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use bitempo_core::fault::panic_message;
use bitempo_core::{obs, Error, Result};

/// Rows per morsel. Small enough to load-balance skewed partitions, large
/// enough that the per-morsel dispatch cost is negligible; partitions below
/// this size never spawn threads.
pub const MORSEL_ROWS: usize = 1024;

/// Execution parameters for one morsel-driven scan: worker count plus the
/// fault-injection hook used by the panic-containment tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MorselExec {
    /// Worker threads (including the calling thread). `<= 1` runs inline.
    pub workers: usize,
    /// If set, the worker that picks up this morsel index panics before
    /// scanning it — a deterministic fault for testing containment.
    pub panic_morsel: Option<u64>,
}

impl Default for MorselExec {
    fn default() -> MorselExec {
        MorselExec::workers(1)
    }
}

impl MorselExec {
    /// Plain execution with `workers` threads and no injected faults.
    pub fn workers(workers: usize) -> MorselExec {
        MorselExec {
            workers,
            panic_morsel: None,
        }
    }

    /// Builder-style: injects a panic at the given morsel index.
    #[must_use]
    pub fn with_panic_morsel(mut self, morsel: u64) -> MorselExec {
        self.panic_morsel = Some(morsel);
        self
    }
}

/// Counters collected by one scan, identical across worker counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanMetrics {
    /// Morsels dispatched across all sequentially-scanned partitions.
    pub morsels: u64,
    /// Version records examined (sequential morsels and index probes alike).
    pub rows_visited: u64,
    /// Examined versions rejected by the temporal specs or predicates.
    pub versions_pruned: u64,
    /// Slots resolved through an index (PK, B-Tree, GiST, or temporal) probe.
    pub index_probes: u64,
    /// Probed slots that survived every residual filter — "the index
    /// helped", as opposed to `index_probes` which only says it was asked.
    pub index_hits: u64,
    /// Index entries examined internally while probing (checkpoint slots,
    /// replayed events, endpoint-list entries, B-Tree leaf entries).
    pub index_node_visits: u64,
    /// Rows the chosen access path was *estimated* to visit when the
    /// optimizer committed to it (after feedback correction). Comparing
    /// against `rows_visited` exposes estimate error per scan.
    pub planned_rows: u64,
}

impl ScanMetrics {
    /// Accumulates `other` into `self` (all counters are additive).
    pub fn merge(&mut self, other: &ScanMetrics) {
        self.morsels += other.morsels;
        self.rows_visited += other.rows_visited;
        self.versions_pruned += other.versions_pruned;
        self.index_probes += other.index_probes;
        self.index_hits += other.index_hits;
        self.index_node_visits += other.index_node_visits;
        self.planned_rows += other.planned_rows;
    }
}

/// The morsel ranges covering `0..units`, in order.
pub fn morsel_ranges(units: usize) -> Vec<Range<usize>> {
    (0..units)
        .step_by(MORSEL_ROWS)
        .map(|start| start..(start + MORSEL_ROWS).min(units))
        .collect()
}

/// Runs one morsel under panic containment, returning its rows and metrics
/// or a [`Error::WorkerPanicked`] naming the morsel.
fn run_one<T, F>(
    index: usize,
    range: Range<usize>,
    exec: MorselExec,
    scan: &F,
) -> Result<(Vec<T>, ScanMetrics)>
where
    F: Fn(Range<usize>, &mut Vec<T>, &mut ScanMetrics) + Sync,
{
    let result = catch_unwind(AssertUnwindSafe(|| {
        if exec.panic_morsel == Some(index as u64) {
            panic!("injected fault: morsel {index}");
        }
        let mut rows = Vec::new();
        let mut m = ScanMetrics::default();
        scan(range, &mut rows, &mut m);
        (rows, m)
    }));
    result.map_err(|payload| Error::WorkerPanicked {
        morsel: index as u64,
        message: panic_message(payload.as_ref()),
    })
}

/// Runs `scan` over every morsel range covering `0..units`, per the
/// [`MorselExec`] config, and returns the concatenated rows plus merged
/// metrics.
///
/// `scan` is invoked once per morsel with a fresh output buffer and metrics;
/// results are concatenated in morsel order, so the returned row vector is
/// identical for every worker count. With one worker (or a single morsel) no
/// threads are spawned and the morsels run inline, in order.
///
/// A panic inside any morsel (including one injected via
/// [`MorselExec::panic_morsel`]) aborts the scan with
/// [`Error::WorkerPanicked`]; remaining morsels are not dispatched, already
/// running ones finish, and the thread scope unwinds cleanly.
pub fn run_morsels<T, F>(units: usize, exec: MorselExec, scan: F) -> Result<(Vec<T>, ScanMetrics)>
where
    T: Send,
    F: Fn(Range<usize>, &mut Vec<T>, &mut ScanMetrics) + Sync,
{
    let morsels = morsel_ranges(units);
    let mut metrics = ScanMetrics {
        morsels: morsels.len() as u64,
        ..ScanMetrics::default()
    };
    let workers = exec.workers.max(1).min(morsels.len().max(1));
    // Worker threads never record (their thread-local recorders stay
    // disabled); this span on the coordinating thread times the whole
    // dispatch, so traces are identical for every worker count.
    let mut morsel_span = obs::span("exec", "run_morsels");
    morsel_span.arg_with("morsels", || morsels.len().to_string());
    morsel_span.arg_with("workers", || workers.to_string());

    if workers == 1 {
        let mut rows = Vec::new();
        for (i, range) in morsels.into_iter().enumerate() {
            let (mut chunk, m) = run_one(i, range, exec, &scan)?;
            rows.append(&mut chunk);
            metrics.merge(&m);
        }
        // Inline metrics count dispatched morsels only on success; on the
        // error path above the whole scan is discarded anyway.
        return Ok((rows, metrics));
    }

    let next = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    let first_panic: Mutex<Option<(u64, Error)>> = Mutex::new(None);
    let drain = |produced: &mut Vec<(usize, Vec<T>, ScanMetrics)>| loop {
        if poisoned.load(Ordering::Relaxed) {
            break;
        }
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(range) = morsels.get(i) else { break };
        match run_one(i, range.clone(), exec, &scan) {
            Ok((rows, m)) => produced.push((i, rows, m)),
            Err(e) => {
                poisoned.store(true, Ordering::Relaxed);
                let mut slot = first_panic.lock().unwrap_or_else(|p| p.into_inner());
                // Keep the lowest-index panic so the reported morsel is
                // deterministic even when several workers trip at once.
                let replace = match slot.as_ref() {
                    None => true,
                    Some((idx, _)) => (i as u64) < *idx,
                };
                if replace {
                    *slot = Some((i as u64, e));
                }
            }
        }
    };
    // The calling thread participates as a worker, so only `workers - 1`
    // threads are spawned — at two workers that halves the dispatch cost.
    let mut done: Vec<(usize, Vec<T>, ScanMetrics)> = std::thread::scope(|s| {
        let handles: Vec<_> = (1..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut produced = Vec::new();
                    drain(&mut produced);
                    produced
                })
            })
            .collect();
        let mut all = Vec::new();
        drain(&mut all);
        for h in handles {
            // Workers never unwind (morsel bodies are caught), but stay
            // defensive: fold an unexpected worker death into the error.
            match h.join() {
                Ok(produced) => all.extend(produced),
                Err(payload) => {
                    poisoned.store(true, Ordering::Relaxed);
                    let mut slot = first_panic.lock().unwrap_or_else(|p| p.into_inner());
                    if slot.is_none() {
                        *slot = Some((
                            u64::MAX,
                            Error::WorkerPanicked {
                                morsel: u64::MAX,
                                message: panic_message(payload.as_ref()),
                            },
                        ));
                    }
                }
            }
        }
        all
    });

    if let Some((_, e)) = first_panic.into_inner().unwrap_or_else(|p| p.into_inner()) {
        return Err(e);
    }

    done.sort_unstable_by_key(|(i, _, _)| *i);
    let mut rows = Vec::with_capacity(done.iter().map(|(_, r, _)| r.len()).sum());
    for (_, mut chunk, m) in done {
        rows.append(&mut chunk);
        metrics.merge(&m);
    }
    Ok((rows, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic scan emitting every even unit in the range.
    fn evens(range: Range<usize>, out: &mut Vec<usize>, m: &mut ScanMetrics) {
        for u in range {
            m.rows_visited += 1;
            if u % 2 == 0 {
                out.push(u);
            } else {
                m.versions_pruned += 1;
            }
        }
    }

    #[test]
    fn ranges_tile_the_unit_space() {
        assert!(morsel_ranges(0).is_empty());
        assert_eq!(morsel_ranges(1), vec![0..1]);
        assert_eq!(morsel_ranges(MORSEL_ROWS), vec![0..MORSEL_ROWS]);
        let r = morsel_ranges(MORSEL_ROWS * 2 + 5);
        assert_eq!(r.len(), 3);
        assert_eq!(r[2], MORSEL_ROWS * 2..MORSEL_ROWS * 2 + 5);
    }

    #[test]
    fn parallel_matches_sequential_rows_and_metrics() {
        let units = MORSEL_ROWS * 7 + 123;
        let (seq_rows, seq_m) = run_morsels(units, MorselExec::workers(1), evens).unwrap();
        for workers in [2, 4, 16] {
            let (par_rows, par_m) =
                run_morsels(units, MorselExec::workers(workers), evens).unwrap();
            assert_eq!(par_rows, seq_rows, "workers={workers}");
            assert_eq!(par_m, seq_m, "workers={workers}");
        }
        assert_eq!(seq_m.morsels, 8);
        assert_eq!(seq_m.rows_visited, units as u64);
        assert_eq!(seq_rows.len(), units.div_ceil(2));
    }

    #[test]
    fn small_input_and_zero_workers_run_inline() {
        let (rows, m) = run_morsels(10, MorselExec::workers(0), evens).unwrap();
        assert_eq!(rows, vec![0, 2, 4, 6, 8]);
        assert_eq!(m.morsels, 1);
        let (rows, m) = run_morsels(0, MorselExec::workers(4), evens).unwrap();
        assert!(rows.is_empty());
        assert_eq!(m.morsels, 0);
    }

    #[test]
    fn injected_panic_is_contained_inline() {
        let units = MORSEL_ROWS * 3;
        let exec = MorselExec::workers(1).with_panic_morsel(1);
        let err = run_morsels(units, exec, evens).unwrap_err();
        assert_eq!(
            err,
            Error::WorkerPanicked {
                morsel: 1,
                message: "injected fault: morsel 1".into(),
            }
        );
    }

    #[test]
    fn injected_panic_is_contained_parallel() {
        let units = MORSEL_ROWS * 8 + 17;
        for workers in [2, 4] {
            let exec = MorselExec::workers(workers).with_panic_morsel(3);
            let err = run_morsels(units, exec, evens).unwrap_err();
            match err {
                Error::WorkerPanicked { morsel, message } => {
                    assert_eq!(morsel, 3, "workers={workers}");
                    assert_eq!(message, "injected fault: morsel 3");
                }
                other => panic!("expected WorkerPanicked, got {other:?}"),
            }
        }
    }

    #[test]
    fn scan_panic_is_contained_too() {
        let bomb = |range: Range<usize>, out: &mut Vec<usize>, _m: &mut ScanMetrics| {
            if range.start >= MORSEL_ROWS * 2 {
                panic!("scan bug at {}", range.start);
            }
            out.extend(range);
        };
        let err = run_morsels(MORSEL_ROWS * 4, MorselExec::workers(2), bomb).unwrap_err();
        match err {
            Error::WorkerPanicked { morsel, message } => {
                assert!(morsel >= 2);
                assert!(message.starts_with("scan bug at "));
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn scan_succeeds_after_failed_attempt() {
        let units = MORSEL_ROWS * 2;
        let exec = MorselExec::workers(2).with_panic_morsel(0);
        assert!(run_morsels(units, exec, evens).is_err());
        // The same scan with the fault cleared recovers fully.
        let (rows, _) = run_morsels(units, MorselExec::workers(2), evens).unwrap();
        assert_eq!(rows.len(), units / 2);
    }
}
