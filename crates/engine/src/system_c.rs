//! System C: an in-memory column store with native system time only.
//!
//! Archetype (paper §2.6 — the SAP HANA "history table"): a columnar table
//! with hidden `validfrom` / `validto` columns tracking system time; data is
//! horizontally partitioned into a *current* partition and a *history*
//! partition, and a **merge** operation moves superseded records from
//! current to history. Time travel recomputes the snapshot by scanning both
//! partitions. There is *no native application time* — the benchmark's
//! application periods are plain date columns, filtered like any value
//! predicate (paper §3.1: simulated application time).
//!
//! System C "relies much more on scans, and is thus not as sensitive to plan
//! changes as the RDBMSs" (§5.4.1): accordingly, tuning requests are
//! accepted (the paper's team built B-Trees on System C too, Fig 3) but the
//! scan path never uses them — which is exactly what the paper measured.

use crate::api::{
    AccessPath, AppSpec, BitemporalEngine, ColRange, ScanOutput, SysSpec, TableStats, TuningConfig,
};
use crate::catalog::Catalog;
use crate::morsel::{run_morsels, ScanMetrics};
use crate::rowscan::{app_probe_for, merge_access, pred_class, sys_probe_for, ScanSite};
use crate::system_a::{overwrite_period, sequenced_dml, SequencedOps};
use crate::version::Version;
use bitempo_core::{
    obs, AppDate, AppPeriod, Column, DataType, Error, Key, Result, Row, Schema, SysPeriod, SysTime,
    TableDef, TableId, TemporalClass, Value,
};
use bitempo_query::optimizer::{self, PathKind};
use bitempo_storage::ColumnTable;
use bitempo_tindex::{IndexFootprint, ProbeCost, TemporalIndex};
use std::collections::{HashMap, HashSet};

#[derive(Debug)]
struct TableC {
    /// Current partition (delta + main inside [`ColumnTable`]).
    current: ColumnTable,
    /// History partition.
    history: ColumnTable,
    /// Open versions per key (row ids in `current`).
    key_map: HashMap<Key, Vec<usize>>,
    /// Rows in `current` that must never be surfaced (non-temporal deletes
    /// and versions that died inside their creating transaction).
    dead: HashSet<usize>,
    /// Closed-but-unmerged row count (merge trigger bookkeeping).
    closed_in_current: usize,
    /// Indexes built on request and never consulted (see module docs).
    ignored_indexes: Vec<String>,
    /// Optional temporal index over the history partition, maintained as
    /// the merge appends superseded records. Unlike the B-Trees above it
    /// *is* consulted: the paper's System C had no such structure, and the
    /// `temporal-index` experiment measures what one would have bought it.
    tindex: Option<TemporalIndex>,
    /// Temporal index over the current partition. Rebuilt at every delta
    /// merge (the merge renumbers rowids), maintained in place between
    /// merges as rows are appended and their `$validto` terminated.
    cur_tindex: Option<TemporalIndex>,
}

/// Positions of the hidden temporal columns within the physical schema.
#[derive(Debug, Clone, Copy)]
struct HiddenCols {
    app_start: Option<usize>,
    sys_start: Option<usize>,
}

fn physical_schema(def: &TableDef) -> (Schema, HiddenCols) {
    let mut cols = def.schema.columns().to_vec();
    let mut hidden = HiddenCols {
        app_start: None,
        sys_start: None,
    };
    if def.has_app_time() {
        hidden.app_start = Some(cols.len());
        cols.push(Column::new("$app_start", DataType::Date));
        cols.push(Column::new("$app_end", DataType::Date));
    }
    if def.has_system_time() {
        hidden.sys_start = Some(cols.len());
        cols.push(Column::new("$validfrom", DataType::SysTime));
        cols.push(Column::new("$validto", DataType::SysTime));
    }
    (Schema::new(cols), hidden)
}

/// Decodes a date-typed hidden column. The hidden columns' types are fixed
/// by [`physical_schema`] at table creation, so the decode cannot fail.
fn decode_date(part: &ColumnTable, col: usize, rowid: usize) -> AppDate {
    // tblint: allow(TB004) hidden-column type is fixed by physical_schema at creation
    part.get_value(col, rowid).as_date().expect("date column")
}

/// Decodes a system-time-typed hidden column; see [`decode_date`].
fn decode_sys(part: &ColumnTable, col: usize, rowid: usize) -> SysTime {
    part.get_value(col, rowid)
        .as_sys_time()
        // tblint: allow(TB004) hidden-column type is fixed by physical_schema at creation
        .expect("systime column")
}

/// Decodes both periods of one physical row from the hidden columns.
fn periods_of(part: &ColumnTable, hidden: HiddenCols, rowid: usize) -> (AppPeriod, SysPeriod) {
    let app = match hidden.app_start {
        Some(c) => AppPeriod::new(decode_date(part, c, rowid), decode_date(part, c + 1, rowid)),
        None => AppPeriod::ALL,
    };
    let sys = match hidden.sys_start {
        Some(c) => SysPeriod::new(decode_sys(part, c, rowid), decode_sys(part, c + 1, rowid)),
        None => SysPeriod::ALL,
    };
    (app, sys)
}

/// Rebuilds a temporal index over one column-store fragment from scratch
/// (tuning time, and after each delta merge renumbers the current rowids).
fn build_column_tindex(
    index_name: String,
    hidden: HiddenCols,
    part: &ColumnTable,
) -> TemporalIndex {
    let mut tix = TemporalIndex::new(
        index_name,
        bitempo_tindex::timeline::DEFAULT_CHECKPOINT_EVERY,
    );
    for rowid in 0..part.len() {
        let (app, sys) = periods_of(part, hidden, rowid);
        tix.insert(rowid as u64, app, sys);
    }
    tix.prepare();
    tix
}

/// The System C engine. See module docs.
#[derive(Debug, Default)]
pub struct SystemC {
    catalog: Catalog,
    tables: Vec<TableC>,
    hidden: Vec<HiddenCols>,
    now: SysTime,
    /// Only [`TuningConfig::workers`] is consulted — the index settings are
    /// accepted but ignored (see [`SystemC::apply_tuning`]).
    tuning: TuningConfig,
}

impl SystemC {
    /// Creates an empty engine.
    pub fn new() -> SystemC {
        SystemC::default()
    }

    fn physical_row(&self, table: TableId, v: &Version) -> Row {
        let def = self.catalog.def(table);
        let mut values = v.row.values().to_vec();
        if def.has_app_time() {
            values.push(Value::Date(v.app.start));
            values.push(Value::Date(v.app.end));
        }
        if def.has_system_time() {
            values.push(Value::SysTime(v.sys.start));
            values.push(Value::SysTime(v.sys.end));
        }
        Row::new(values)
    }

    fn version_from(&self, table: TableId, part: &ColumnTable, rowid: usize) -> Version {
        let def = self.catalog.def(table);
        let hidden = self.hidden_of(table);
        let arity = def.schema.arity();
        let row: Row = (0..arity).map(|c| part.get_value(c, rowid)).collect();
        let app = match hidden.app_start {
            Some(c) => AppPeriod::new(decode_date(part, c, rowid), decode_date(part, c + 1, rowid)),
            None => AppPeriod::ALL,
        };
        let sys = match hidden.sys_start {
            Some(c) => SysPeriod::new(decode_sys(part, c, rowid), decode_sys(part, c + 1, rowid)),
            None => SysPeriod::ALL,
        };
        Version { row, app, sys }
    }

    /// `TableId`s are issued densely by the catalog, so indexing with one it
    /// handed out cannot go out of bounds.
    fn table(&self, table: TableId) -> &TableC {
        // tblint: allow(TB004) TableId is catalog-issued and dense; sole indexing point for reads
        &self.tables[table.0 as usize]
    }

    fn table_mut(&mut self, table: TableId) -> &mut TableC {
        // tblint: allow(TB004) TableId is catalog-issued and dense; sole indexing point for writes
        &mut self.tables[table.0 as usize]
    }

    fn hidden_of(&self, table: TableId) -> HiddenCols {
        // tblint: allow(TB004) hidden-column positions are pushed in lockstep with create_table
        self.hidden[table.0 as usize]
    }

    /// The HANA-style delta merge: seals the column deltas *and* moves
    /// superseded records from the current to the history partition.
    fn merge_table(&mut self, table: TableId) {
        let def = self.catalog.def(table).clone();
        let (phys, _) = physical_schema(&def);
        let hidden = self.hidden_of(table);
        let t = self.table_mut(table);
        if t.closed_in_current == 0 && t.dead.is_empty() {
            t.current.merge();
            t.history.merge();
            return;
        }
        let old = std::mem::replace(&mut t.current, ColumnTable::new(phys));
        let mut new_map: HashMap<Key, Vec<usize>> = HashMap::new();
        for rowid in 0..old.len() {
            if t.dead.contains(&rowid) {
                continue;
            }
            let row = old.get_row(rowid);
            let open = match hidden.sys_start {
                Some(c) => decode_sys(&old, c + 1, rowid) == SysTime::MAX,
                None => true,
            };
            if open {
                // tblint: allow(TB004) row came from a fragment with the identical physical schema
                let new_id = t.current.append_row(&row).expect("schema preserved");
                let key_vals: Vec<Value> =
                    def.key.iter().map(|&c| old.get_value(c, rowid)).collect();
                let key = match key_vals.as_slice() {
                    [Value::Int(a)] => Key::Int(*a),
                    [Value::Int(a), Value::Int(b)] => Key::Int2(*a, *b),
                    other => Key::General(other.to_vec()),
                };
                new_map.entry(key).or_default().push(new_id);
            } else {
                // tblint: allow(TB004) row came from a fragment with the identical physical schema
                let hist_id = t.history.append_row(&row).expect("schema preserved");
                if let Some(tix) = &mut t.tindex {
                    let (app, sysp) = periods_of(&old, hidden, rowid);
                    tix.insert(hist_id as u64, app, sysp);
                }
            }
        }
        t.key_map = new_map;
        t.dead.clear();
        t.closed_in_current = 0;
        t.current.merge();
        t.history.merge();
        if let Some(tix) = &mut t.tindex {
            tix.prepare();
        }
        if t.cur_tindex.is_some() {
            // The rebuild above renumbered every current rowid.
            t.cur_tindex = Some(build_column_tindex(
                format!("tx_cur_{}", def.name),
                hidden,
                &t.current,
            ));
        }
    }
}

impl SequencedOps for SystemC {
    fn def(&self, table: TableId) -> &TableDef {
        self.catalog.def(table)
    }
    fn pending_time(&self) -> SysTime {
        self.now.next()
    }
    fn open_slots(&self, table: TableId, key: &Key) -> Vec<u64> {
        self.table(table)
            .key_map
            .get(key)
            .map(|v| v.iter().map(|&r| r as u64).collect())
            .unwrap_or_default()
    }
    fn peek(&self, table: TableId, slot: u64) -> Option<Version> {
        let t = self.table(table);
        let rowid = slot as usize;
        if rowid >= t.current.len() || t.dead.contains(&rowid) {
            return None;
        }
        Some(self.version_from(table, &t.current, rowid))
    }
    fn close(&mut self, table: TableId, slot: u64, end: SysTime) -> Result<Version> {
        let rowid = slot as usize;
        let Some(before) = self.peek(table, slot) else {
            return Err(Error::Internal(format!(
                "closing row {rowid} with no live version"
            )));
        };
        let def_key = self.catalog.def(table).key.clone();
        let hidden = self.hidden_of(table);
        let t = self.table_mut(table);
        let key = Key::from_row(&before.row, &def_key);
        if let Some(rows) = t.key_map.get_mut(&key) {
            rows.retain(|&r| r != rowid);
        }
        let never_visible = before.sys.start >= end;
        // `sys_start` is `Some` exactly when the table is system-versioned.
        match hidden.sys_start {
            Some(c) if !never_visible => {
                t.current
                    .set_value(c + 1, rowid, &Value::SysTime(end))
                    .map_err(|e| Error::Internal(format!("validto update: {e}")))?;
                t.closed_in_current += 1;
            }
            _ => {
                t.dead.insert(rowid);
            }
        }
        if let Some(tix) = &mut t.cur_tindex {
            tix.close(slot, end);
        }
        Ok(before)
    }
    fn insert_version_at(&mut self, table: TableId, version: Version) {
        let def_key = self.catalog.def(table).key.clone();
        let phys = self.physical_row(table, &version);
        let t = self.table_mut(table);
        // tblint: allow(TB004) physical_row builds against this table's own physical schema
        let rowid = t.current.append_row(&phys).expect("schema matches");
        let key = Key::from_row(&version.row, &def_key);
        t.key_map.entry(key).or_default().push(rowid);
        if let Some(tix) = &mut t.cur_tindex {
            tix.insert(rowid as u64, version.app, version.sys);
        }
    }
}

impl BitemporalEngine for SystemC {
    fn name(&self) -> &'static str {
        "System C"
    }

    fn architecture(&self) -> &'static str {
        "in-memory column store; delta/main fragments; hidden validfrom/validto system-time \
         columns; merge moves superseded records to a history partition; application time \
         simulated with plain columns; scan-based execution, indexes unused"
    }

    fn create_table(&mut self, def: TableDef) -> Result<TableId> {
        let (phys, hidden) = physical_schema(&def);
        let id = self.catalog.create(def)?;
        self.tables.push(TableC {
            current: ColumnTable::new(phys.clone()),
            history: ColumnTable::new(phys),
            key_map: HashMap::new(),
            dead: HashSet::new(),
            closed_in_current: 0,
            ignored_indexes: Vec::new(),
            tindex: None,
            cur_tindex: None,
        });
        self.hidden.push(hidden);
        Ok(id)
    }

    fn resolve(&self, name: &str) -> Result<TableId> {
        self.catalog.resolve(name)
    }

    fn table_names(&self) -> Vec<String> {
        self.catalog.iter().map(|(_, d)| d.name.clone()).collect()
    }

    fn table_def(&self, table: TableId) -> &TableDef {
        self.catalog.def(table)
    }

    fn apply_tuning(&mut self, tuning: &TuningConfig) -> Result<()> {
        self.tuning = tuning.clone();
        // Build (label) the requested indexes so the tuning study can report
        // them, but never consult them: the scan path is the plan (Fig 3).
        for (id, def) in self.catalog.iter() {
            // tblint: allow(TB004) hidden-column positions are pushed in lockstep with create_table
            let hidden = self.hidden[id.0 as usize];
            // tblint: allow(TB004) TableId is catalog-issued and dense (borrow split from catalog)
            let t = &mut self.tables[id.0 as usize];
            t.tindex = (tuning.temporal_index && def.has_system_time())
                .then(|| build_column_tindex(format!("tx_hist_{}", def.name), hidden, &t.history));
            t.cur_tindex = (tuning.temporal_index && def.has_system_time())
                .then(|| build_column_tindex(format!("tx_cur_{}", def.name), hidden, &t.current));
            t.ignored_indexes.clear();
            if tuning.time_index && def.has_system_time() {
                t.ignored_indexes.push(format!("ix_sys_{}", def.name));
            }
            if tuning.key_time_index && !def.key.is_empty() {
                t.ignored_indexes.push(format!("ix_key_{}", def.name));
            }
            for (tname, cname) in &tuning.value_index {
                if *tname == def.name {
                    def.schema.col(cname)?;
                    t.ignored_indexes
                        .push(format!("ix_val_{}_{}", def.name, cname));
                }
            }
        }
        Ok(())
    }

    fn insert(&mut self, table: TableId, row: Row, app: Option<AppPeriod>) -> Result<()> {
        let def = self.catalog.def(table);
        if row.arity() != def.schema.arity() {
            return Err(Error::Invalid(format!(
                "arity {} vs schema {} for {}",
                row.arity(),
                def.schema.arity(),
                def.name
            )));
        }
        let app = match (def.temporal, app) {
            (TemporalClass::Bitemporal, Some(p)) if p.is_empty() => {
                return Err(Error::EmptyPeriod(format!("{p}")))
            }
            (TemporalClass::Bitemporal, Some(p)) => p,
            (TemporalClass::Bitemporal, None) => AppPeriod::ALL,
            (_, Some(_)) => {
                return Err(Error::Unsupported(format!(
                    "application period on table {}",
                    def.name
                )))
            }
            (_, None) => AppPeriod::ALL,
        };
        let sys = if def.temporal == TemporalClass::NonTemporal {
            SysPeriod::ALL
        } else {
            SysPeriod::since(self.pending_time())
        };
        self.insert_version_at(table, Version { row, app, sys });
        Ok(())
    }

    fn update(
        &mut self,
        table: TableId,
        key: &Key,
        updates: &[(usize, Value)],
        portion: Option<AppPeriod>,
    ) -> Result<usize> {
        sequenced_dml(self, table, key, portion, Some(updates))
    }

    fn delete(&mut self, table: TableId, key: &Key, portion: Option<AppPeriod>) -> Result<usize> {
        sequenced_dml(self, table, key, portion, None)
    }

    fn overwrite_app_period(
        &mut self,
        table: TableId,
        key: &Key,
        period: AppPeriod,
    ) -> Result<usize> {
        overwrite_period(self, table, key, period)
    }

    fn commit(&mut self) -> SysTime {
        self.now = self.now.next();
        self.now
    }

    fn now(&self) -> SysTime {
        self.now
    }

    fn advance_clock(&mut self, to: SysTime) {
        if self.now < to {
            self.now = to;
        }
    }

    fn scan(
        &self,
        table: TableId,
        sys: &SysSpec,
        app: &AppSpec,
        preds: &[ColRange],
    ) -> Result<ScanOutput> {
        let def = self.catalog.def(table);
        let hidden = self.hidden_of(table);
        let t = self.table(table);
        let exec = self.tuning.exec();
        let _span = obs::span_dyn("engine", || format!("System C scan {}", def.name));
        let mut rows = Vec::new();
        let mut metrics = ScanMetrics::default();
        let mut paths: Vec<AccessPath> = Vec::new();

        // Shared residual filter: the authoritative per-row re-check, used
        // by the sequential path and by temporal-index candidates alike so
        // index precision can never change scan results.
        let qualifies = |part: &ColumnTable, rowid: usize| -> bool {
            let sys_ok = match hidden.sys_start {
                Some(c) => {
                    let start = decode_sys(part, c, rowid);
                    let end = decode_sys(part, c + 1, rowid);
                    sys.matches(&SysPeriod::new(start, end))
                }
                None => true,
            };
            let app_ok = sys_ok
                && match hidden.app_start {
                    Some(c) => {
                        let start = decode_date(part, c, rowid);
                        let end = decode_date(part, c + 1, rowid);
                        app.matches(&AppPeriod::new(start, end))
                    }
                    None => true,
                };
            app_ok
                && preds
                    .iter()
                    .all(|p| p.matches(&part.get_value(p.col, rowid)))
        };

        // Column-store execution: evaluate the temporal filter and the
        // pushed predicates on the *columns they touch*, and materialize a
        // full row only for qualifying positions — the scan discipline that
        // makes System C "not as sensitive to plan changes" (paper §5.4.1).
        // Each fragment is scanned in row-range morsels; merging per-morsel
        // buffers in morsel order keeps the output order identical to the
        // single-threaded loop.
        let scan_fragment = |partition: &'static str,
                             part: &ColumnTable,
                             dead: Option<&HashSet<usize>>,
                             tix: Option<&TemporalIndex>,
                             rows: &mut Vec<Row>,
                             metrics: &mut ScanMetrics|
         -> Result<()> {
            let start = obs::trace_clock();
            let (frag_rows, mut m) = run_morsels(part.len(), exec, |range, buf, m| {
                for rowid in range {
                    if dead.is_some_and(|d| d.contains(&rowid)) {
                        continue;
                    }
                    m.rows_visited += 1;
                    if !qualifies(part, rowid) {
                        m.versions_pruned += 1;
                        continue;
                    }
                    let v = self.version_from(table, part, rowid);
                    buf.push(v.output_row(def));
                }
            })?;
            m.planned_rows = part.len() as u64;
            // System C has no B-Tree paths, so the per-fragment trace is
            // assembled here rather than in `rowscan::scan_partition`.
            if let Some(start) = start {
                let end = obs::trace_clock().unwrap_or(start);
                ScanSite {
                    engine: "System C",
                    table: &def.name,
                    partition,
                }
                .record(
                    &AccessPath::FullScan { partitions: 1 },
                    m,
                    frag_rows.len() as u64,
                    exec.workers.max(1),
                    start,
                    end.saturating_sub(start),
                );
            }
            // Closing the loop from the sequential side: a declined probe's
            // estimate is still scored against the rows the scan emitted
            // (its candidate set is a superset of them), so a repeated
            // overestimate re-plans onto the probe.
            if self.tuning.adaptive {
                if let Some(tix) = tix {
                    let sys_probe = sys_probe_for(sys);
                    let app_probe = app_probe_for(app);
                    let n = part.len();
                    if (sys_probe.is_some() || app_probe.is_some()) && n > 0 {
                        let raw = tix.estimate_candidates(sys_probe.as_ref(), app_probe.as_ref(), n)
                            as u64;
                        let fsite = optimizer::FeedbackSite {
                            engine: "System C",
                            table: &def.name,
                            partition,
                        };
                        optimizer::observe(
                            &fsite,
                            &pred_class(sys, app, preds),
                            PathKind::TemporalProbe,
                            raw,
                            frag_rows.len() as u64,
                        );
                    }
                }
            }
            metrics.merge(&m);
            rows.extend(frag_rows);
            Ok(())
        };
        // The temporal index is the one index System C consults: when the
        // estimated candidate fraction for a fragment is selective enough,
        // the probe visits candidate rowids (ascending, so output order
        // matches the sequential scan) instead of walking the fragment.
        let probe_fragment = |partition: &'static str,
                              part: &ColumnTable,
                              dead: Option<&HashSet<usize>>,
                              tix: Option<&TemporalIndex>,
                              rows: &mut Vec<Row>,
                              metrics: &mut ScanMetrics|
         -> Option<AccessPath> {
            let tix = tix?;
            let sys_probe = sys_probe_for(sys);
            let app_probe = app_probe_for(app);
            if sys_probe.is_none() && app_probe.is_none() {
                return None;
            }
            let n = part.len();
            // An empty fragment defeats the estimator (its divisor was once
            // patched with `.max(1)`, making an empty fragment estimate
            // fraction 0 and always "win"); the trivial scan handles it.
            if n == 0 {
                return None;
            }
            let frac = tix.estimate_fraction(sys_probe.as_ref(), app_probe.as_ref(), n);
            let mut memo = optimizer::Memo::new(n);
            memo.add(optimizer::Alternative::seq());
            memo.add(optimizer::Alternative::new(
                PathKind::TemporalProbe,
                tix.name(),
                Some(frac),
            ));
            let class = pred_class(sys, app, preds);
            let fsite = optimizer::FeedbackSite {
                engine: "System C",
                table: &def.name,
                partition,
            };
            let with_feedback = |kind: PathKind, f: f64| {
                (f * optimizer::correction(&fsite, &class, kind)).clamp(0.0, 1.0)
            };
            let identity = |_: PathKind, f: f64| f;
            let decision = if self.tuning.adaptive {
                memo.best(&with_feedback)
            } else {
                memo.best(&identity)
            }?;
            if decision.winner.kind != PathKind::TemporalProbe {
                return None;
            }
            let mut cost = ProbeCost::default();
            let cands = tix.candidates(sys_probe.as_ref(), app_probe.as_ref(), &mut cost)?;
            let start = obs::trace_clock();
            let mut m = ScanMetrics {
                index_node_visits: cost.node_visits,
                planned_rows: decision.winner.est_rows,
                ..ScanMetrics::default()
            };
            let mut buf = Vec::new();
            for slot in cands {
                let rowid = slot as usize;
                m.index_probes += 1;
                if rowid >= part.len() || dead.is_some_and(|d| d.contains(&rowid)) {
                    continue;
                }
                m.rows_visited += 1;
                if !qualifies(part, rowid) {
                    m.versions_pruned += 1;
                    continue;
                }
                m.index_hits += 1;
                let v = self.version_from(table, part, rowid);
                buf.push(v.output_row(def));
            }
            let path = AccessPath::TemporalProbe(tix.name().to_string());
            if let Some(start) = start {
                let end = obs::trace_clock().unwrap_or(start);
                ScanSite {
                    engine: "System C",
                    table: &def.name,
                    partition,
                }
                .record(
                    &path,
                    m,
                    buf.len() as u64,
                    1,
                    start,
                    end.saturating_sub(start),
                );
            }
            if self.tuning.adaptive {
                optimizer::observe(
                    &fsite,
                    &class,
                    PathKind::TemporalProbe,
                    decision.winner.raw_rows,
                    m.rows_visited,
                );
            }
            metrics.merge(&m);
            rows.extend(buf);
            Some(path)
        };

        match probe_fragment(
            "current",
            &t.current,
            Some(&t.dead),
            t.cur_tindex.as_ref(),
            &mut rows,
            &mut metrics,
        ) {
            Some(path) => paths.push(path),
            None => {
                scan_fragment(
                    "current",
                    &t.current,
                    Some(&t.dead),
                    t.cur_tindex.as_ref(),
                    &mut rows,
                    &mut metrics,
                )?;
                paths.push(AccessPath::FullScan { partitions: 1 });
            }
        }
        if !sys.current_only() && def.has_system_time() {
            match probe_fragment(
                "history",
                &t.history,
                None,
                t.tindex.as_ref(),
                &mut rows,
                &mut metrics,
            ) {
                Some(path) => paths.push(path),
                None => {
                    scan_fragment(
                        "history",
                        &t.history,
                        None,
                        t.tindex.as_ref(),
                        &mut rows,
                        &mut metrics,
                    )?;
                    paths.push(AccessPath::FullScan { partitions: 1 });
                }
            }
        }
        let out = ScanOutput {
            rows,
            access: merge_access(paths.clone()),
            partition_paths: paths,
            metrics,
        };
        #[cfg(debug_assertions)]
        crate::api::validate_scan_output(def, sys, app, preds, &out)
            .unwrap_or_else(|msg| panic!("System C scan postcondition: {msg}"));
        Ok(out)
    }

    fn lookup_key(
        &self,
        table: TableId,
        key: &Key,
        sys: &SysSpec,
        app: &AppSpec,
    ) -> Result<ScanOutput> {
        let def = self.catalog.def(table);
        let preds: Vec<ColRange> = def
            .key
            .iter()
            .zip(key.to_values())
            .map(|(&c, v)| ColRange::eq(c, v))
            .collect();
        // Column stores answer even point lookups with scans.
        self.scan(table, sys, app, &preds)
    }

    fn stats(&self, table: TableId) -> TableStats {
        let t = self.table(table);
        let open: usize = t.key_map.values().map(Vec::len).sum();
        TableStats {
            current_rows: open,
            history_rows: t.history.len() + t.closed_in_current,
        }
    }

    fn supports_manual_system_time(&self) -> bool {
        false
    }

    fn bulk_load(
        &mut self,
        _table: TableId,
        _versions: Vec<(Row, AppPeriod, SysPeriod)>,
    ) -> Result<()> {
        Err(Error::Unsupported(
            "bulk load with manual system time".into(),
        ))
    }

    fn checkpoint(&mut self) {
        for id in 0..self.tables.len() {
            self.merge_table(TableId(id as u32));
        }
    }

    fn temporal_index_footprint(&self) -> IndexFootprint {
        self.tables
            .iter()
            .flat_map(|t| t.tindex.iter().chain(t.cur_tindex.iter()))
            .fold(IndexFootprint::default(), |acc, tix| {
                acc.merged(tix.footprint())
            })
    }

    fn snapshot_versions(&self, table: TableId) -> Result<Vec<Version>> {
        let t = self.table(table);
        let mut out = Vec::with_capacity(t.current.len() + t.history.len());
        for rowid in 0..t.current.len() {
            if t.dead.contains(&rowid) {
                continue;
            }
            out.push(self.version_from(table, &t.current, rowid));
        }
        for rowid in 0..t.history.len() {
            out.push(self.version_from(table, &t.history, rowid));
        }
        Ok(out)
    }

    fn restore(&mut self, table: TableId, versions: Vec<Version>, now: SysTime) -> Result<()> {
        let def = self.catalog.def(table).clone();
        let (phys, _) = physical_schema(&def);
        {
            let t = self.table_mut(table);
            t.current = ColumnTable::new(phys.clone());
            t.history = ColumnTable::new(phys);
            t.key_map.clear();
            t.dead.clear();
            t.closed_in_current = 0;
            t.ignored_indexes.clear();
            t.tindex = None;
            t.cur_tindex = None;
        }
        for v in versions {
            if v.sys.is_current() {
                self.insert_version_at(table, v);
            } else {
                let phys_row = self.physical_row(table, &v);
                let t = self.table_mut(table);
                t.history
                    .append_row(&phys_row)
                    .map_err(|e| Error::Internal(format!("restore history append: {e}")))?;
            }
        }
        // The snapshot was taken from merged fragments; seal the deltas so
        // the restored physical layout matches the uncrashed engine's.
        let t = self.table_mut(table);
        t.current.merge();
        t.history.merge();
        self.now = now;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{bitemp_table, insert_rows, simple_row};
    use bitempo_core::{AppDate, Period};

    #[test]
    fn insert_update_time_travel() {
        let mut e = SystemC::new();
        let t = e.create_table(bitemp_table("t")).unwrap();
        insert_rows(&mut e, t, &[(1, 10), (2, 20)]);
        let t1 = e.now();
        e.update(t, &Key::int(1), &[(1, Value::Int(11))], None)
            .unwrap();
        e.commit();
        let cur = e.scan(t, &SysSpec::Current, &AppSpec::All, &[]).unwrap();
        assert_eq!(cur.rows.len(), 2);
        assert_eq!(cur.access, AccessPath::FullScan { partitions: 1 });
        let past = e.scan(t, &SysSpec::AsOf(t1), &AppSpec::All, &[]).unwrap();
        let mut vals: Vec<i64> = past
            .rows
            .iter()
            .map(|r| r.get(1).as_int().unwrap())
            .collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![10, 20]);
        assert_eq!(past.access, AccessPath::FullScan { partitions: 2 });
    }

    #[test]
    fn merge_moves_closed_versions_to_history() {
        let mut e = SystemC::new();
        let t = e.create_table(bitemp_table("t")).unwrap();
        insert_rows(&mut e, t, &[(1, 10)]);
        let t1 = e.now();
        for i in 0..5 {
            e.update(t, &Key::int(1), &[(1, Value::Int(i))], None)
                .unwrap();
            e.commit();
        }
        assert_eq!(e.tables[0].history.len(), 0, "not merged yet");
        let before: Vec<Row> = {
            let mut r = e.scan(t, &SysSpec::All, &AppSpec::All, &[]).unwrap().rows;
            r.sort();
            r
        };
        e.checkpoint();
        assert_eq!(e.tables[0].history.len(), 5);
        assert_eq!(e.tables[0].current.len(), 1);
        let after: Vec<Row> = {
            let mut r = e.scan(t, &SysSpec::All, &AppSpec::All, &[]).unwrap().rows;
            r.sort();
            r
        };
        assert_eq!(before, after, "merge must not change query results");
        // Time travel to before the updates still works post-merge.
        let past = e.scan(t, &SysSpec::AsOf(t1), &AppSpec::All, &[]).unwrap();
        assert_eq!(past.rows.len(), 1);
        assert_eq!(past.rows[0].get(1), &Value::Int(10));
        // DML after merge keeps working.
        e.update(t, &Key::int(1), &[(1, Value::Int(99))], None)
            .unwrap();
        e.commit();
        let cur = e.scan(t, &SysSpec::Current, &AppSpec::All, &[]).unwrap();
        assert_eq!(cur.rows[0].get(1), &Value::Int(99));
    }

    #[test]
    fn key_lookup_is_a_scan() {
        let mut e = SystemC::new();
        let t = e.create_table(bitemp_table("t")).unwrap();
        insert_rows(&mut e, t, &[(1, 1), (2, 2)]);
        let out = e
            .lookup_key(t, &Key::int(1), &SysSpec::Current, &AppSpec::All)
            .unwrap();
        assert!(matches!(out.access, AccessPath::FullScan { .. }));
        assert_eq!(out.rows.len(), 1);
    }

    #[test]
    fn tuning_is_accepted_and_ignored() {
        let mut e = SystemC::new();
        let t = e.create_table(bitemp_table("t")).unwrap();
        insert_rows(&mut e, t, &[(1, 1)]);
        e.apply_tuning(&TuningConfig::key_time()).unwrap();
        assert!(!e.tables[0].ignored_indexes.is_empty());
        let out = e
            .lookup_key(t, &Key::int(1), &SysSpec::Current, &AppSpec::All)
            .unwrap();
        assert!(
            matches!(out.access, AccessPath::FullScan { .. }),
            "System C never uses indexes (Fig 3)"
        );
    }

    #[test]
    fn sequenced_split_in_column_store() {
        let mut e = SystemC::new();
        let t = e.create_table(bitemp_table("t")).unwrap();
        e.insert(
            t,
            simple_row(1, 100),
            Some(Period::new(AppDate(0), AppDate(100))),
        )
        .unwrap();
        e.commit();
        e.update(
            t,
            &Key::int(1),
            &[(1, Value::Int(777))],
            Some(Period::new(AppDate(20), AppDate(40))),
        )
        .unwrap();
        e.commit();
        let out = e.scan(t, &SysSpec::Current, &AppSpec::All, &[]).unwrap();
        assert_eq!(out.rows.len(), 3);
        let out = e
            .scan(t, &SysSpec::Current, &AppSpec::AsOf(AppDate(30)), &[])
            .unwrap();
        assert_eq!(out.rows[0].get(1), &Value::Int(777));
    }

    #[test]
    fn same_txn_supersede_never_surfaces() {
        let mut e = SystemC::new();
        let t = e.create_table(bitemp_table("t")).unwrap();
        e.insert(t, simple_row(1, 1), None).unwrap();
        e.update(t, &Key::int(1), &[(1, Value::Int(2))], None)
            .unwrap();
        e.commit();
        let all = e.scan(t, &SysSpec::All, &AppSpec::All, &[]).unwrap();
        assert_eq!(all.rows.len(), 1);
        assert_eq!(all.rows[0].get(1), &Value::Int(2));
        e.checkpoint();
        let all = e.scan(t, &SysSpec::All, &AppSpec::All, &[]).unwrap();
        assert_eq!(all.rows.len(), 1, "dead row dropped by merge");
    }

    #[test]
    fn temporal_tuning_probes_merged_history() {
        let mut e = SystemC::new();
        let t = e.create_table(bitemp_table("t")).unwrap();
        insert_rows(&mut e, t, &[(1, 0)]);
        for i in 0..8 {
            e.update(t, &Key::int(1), &[(1, Value::Int(i))], None)
                .unwrap();
            e.commit();
        }
        let early = e.now();
        for i in 0..200 {
            e.update(t, &Key::int(1), &[(1, Value::Int(100 + i))], None)
                .unwrap();
            e.commit();
        }
        e.checkpoint();
        let plain = e
            .scan(t, &SysSpec::AsOf(early), &AppSpec::All, &[])
            .unwrap();
        assert!(matches!(plain.access, AccessPath::FullScan { .. }));
        e.apply_tuning(&TuningConfig::temporal()).unwrap();
        // Maintenance after tuning: versions reaching history through the
        // delta merge keep feeding the index.
        e.update(t, &Key::int(1), &[(1, Value::Int(999))], None)
            .unwrap();
        e.commit();
        e.checkpoint();
        let probed = e
            .scan(t, &SysSpec::AsOf(early), &AppSpec::All, &[])
            .unwrap();
        assert!(
            matches!(probed.access, AccessPath::TemporalProbe(_)),
            "expected a temporal probe, got {}",
            probed.access
        );
        assert!(probed.metrics.index_hits > 0);
        assert_eq!(probed.rows, plain.rows);
    }
}
