//! The version record and scan-row assembly shared by the engines.

use crate::api::{AppSpec, ColRange, SysSpec};
use bitempo_core::{AppPeriod, Row, SysPeriod, TableDef, TemporalClass, Value};

/// One stored version of a logical row: value columns plus both periods.
#[derive(Debug, Clone, PartialEq)]
pub struct Version {
    /// The value columns.
    pub row: Row,
    /// Application-time validity. [`AppPeriod::ALL`] on tables without a
    /// native application time.
    pub app: AppPeriod,
    /// System-time validity; open-ended while the version is current.
    pub sys: SysPeriod,
}

impl Version {
    /// True if the version qualifies under both temporal specs.
    pub fn matches(&self, sys: &SysSpec, app: &AppSpec) -> bool {
        sys.matches(&self.sys) && app.matches(&self.app)
    }

    /// True if all pushed predicates hold on the value columns.
    pub fn matches_preds(&self, preds: &[ColRange]) -> bool {
        preds.iter().all(|p| p.matches(self.row.get(p.col)))
    }

    /// Assembles the scan output row for this version under `def`'s layout:
    /// value columns, then `app_start`/`app_end` if bitemporal, then
    /// `sys_start`/`sys_end` if system-versioned.
    pub fn output_row(&self, def: &TableDef) -> Row {
        let mut v = Vec::with_capacity(self.row.arity() + 4);
        v.extend_from_slice(self.row.values());
        if def.temporal == TemporalClass::Bitemporal {
            v.push(Value::Date(self.app.start));
            v.push(Value::Date(self.app.end));
        }
        if def.temporal != TemporalClass::NonTemporal {
            v.push(Value::SysTime(self.sys.start));
            v.push(Value::SysTime(self.sys.end));
        }
        Row::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::SysSpec;
    use bitempo_core::{
        AppDate, Column, DataType, Key, Period, Schema, SysTime, TableDef, TemporalClass,
    };

    fn version() -> Version {
        Version {
            row: Row::new(vec![Value::Int(1), Value::str("x")]),
            app: Period::new(AppDate(10), AppDate(20)),
            sys: Period::new(SysTime(3), SysTime::MAX),
        }
    }

    fn def(class: TemporalClass) -> TableDef {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("name", DataType::Str),
        ]);
        let app = (class == TemporalClass::Bitemporal).then_some("vt");
        TableDef::new("t", schema, vec![0], class, app).unwrap()
    }

    #[test]
    fn matches_combines_both_dimensions() {
        let v = version();
        assert!(v.matches(&SysSpec::Current, &AppSpec::AsOf(AppDate(15))));
        assert!(!v.matches(&SysSpec::Current, &AppSpec::AsOf(AppDate(25))));
        assert!(!v.matches(&SysSpec::AsOf(SysTime(2)), &AppSpec::All));
        assert!(v.matches(&SysSpec::AsOf(SysTime(3)), &AppSpec::All));
    }

    #[test]
    fn output_layouts_per_class() {
        let v = version();
        let bt = v.output_row(&def(TemporalClass::Bitemporal));
        assert_eq!(bt.arity(), 6);
        assert_eq!(bt.get(2), &Value::Date(AppDate(10)));
        assert_eq!(bt.get(5), &Value::SysTime(SysTime::MAX));

        let deg = v.output_row(&def(TemporalClass::Degenerate));
        assert_eq!(deg.arity(), 4);
        assert_eq!(deg.get(2), &Value::SysTime(SysTime(3)));

        let nt = v.output_row(&def(TemporalClass::NonTemporal));
        assert_eq!(nt.arity(), 2);
    }

    #[test]
    fn pred_matching() {
        let v = version();
        let preds = vec![ColRange::eq(0, Value::Int(1))];
        assert!(v.matches_preds(&preds));
        let preds = vec![ColRange::eq(0, Value::Int(2))];
        assert!(!v.matches_preds(&preds));
        assert!(v.matches_preds(&[]));
        // Key extraction from version rows still works.
        assert_eq!(Key::from_row(&v.row, &[0]), Key::Int(1));
    }
}
