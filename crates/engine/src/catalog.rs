//! Table catalog shared by all engines.

use bitempo_core::{Error, Result, TableDef, TableId};
use std::collections::HashMap;

/// Maps table names to ids and holds the logical definitions.
#[derive(Debug, Default)]
pub struct Catalog {
    defs: Vec<TableDef>,
    by_name: HashMap<String, TableId>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers a table definition, assigning the next id.
    pub fn create(&mut self, def: TableDef) -> Result<TableId> {
        if self.by_name.contains_key(&def.name) {
            return Err(Error::TableExists(def.name.clone()));
        }
        let id = TableId(self.defs.len() as u32);
        self.by_name.insert(def.name.clone(), id);
        self.defs.push(def);
        Ok(id)
    }

    /// Resolves a table name.
    pub fn resolve(&self, name: &str) -> Result<TableId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| Error::UnknownTable(name.to_string()))
    }

    /// The definition for `id`. Panics on a foreign id — ids are only ever
    /// minted by this catalog.
    pub fn def(&self, id: TableId) -> &TableDef {
        &self.defs[id.0 as usize]
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True if no tables have been created.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Iterates `(id, def)` pairs in creation order.
    pub fn iter(&self) -> impl Iterator<Item = (TableId, &TableDef)> {
        self.defs
            .iter()
            .enumerate()
            .map(|(i, d)| (TableId(i as u32), d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitempo_core::{Column, DataType, Schema, TemporalClass};

    fn def(name: &str) -> TableDef {
        TableDef::new(
            name,
            Schema::new(vec![Column::new("id", DataType::Int)]),
            vec![0],
            TemporalClass::NonTemporal,
            None,
        )
        .unwrap()
    }

    #[test]
    fn create_resolve_roundtrip() {
        let mut c = Catalog::new();
        let a = c.create(def("alpha")).unwrap();
        let b = c.create(def("beta")).unwrap();
        assert_ne!(a, b);
        assert_eq!(c.resolve("alpha").unwrap(), a);
        assert_eq!(c.def(b).name, "beta");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut c = Catalog::new();
        c.create(def("t")).unwrap();
        assert!(matches!(c.create(def("t")), Err(Error::TableExists(_))));
    }

    #[test]
    fn unknown_name_errors() {
        let c = Catalog::new();
        assert!(matches!(c.resolve("nope"), Err(Error::UnknownTable(_))));
    }

    #[test]
    fn iteration_order_is_creation_order() {
        let mut c = Catalog::new();
        c.create(def("one")).unwrap();
        c.create(def("two")).unwrap();
        let names: Vec<_> = c.iter().map(|(_, d)| d.name.as_str()).collect();
        assert_eq!(names, vec!["one", "two"]);
    }
}
