//! System D: a conventional RDBMS with *simulated* temporal support.
//!
//! Archetype (paper §2.5 — PostgreSQL): no native temporal features at all.
//! Both periods are ordinary columns in one single table — no current/history
//! split — so the loader may set system timestamps itself and bulk-load the
//! history (paper §5.8: "its cost is much lower since we can set the
//! timestamps manually and perform a bulk load"). The price is paid at query
//! time: even implicit-current queries must wade through all versions
//! ("the missing current/history split of System D makes application time
//! history at current system time more expensive", §5.5.1). B-Tree *and*
//! GiST (R-Tree) indexes are available through tuning.

use crate::api::{
    AppSpec, BitemporalEngine, ColRange, IndexKind, ScanOutput, SysSpec, TableStats, TuningConfig,
};
use crate::catalog::Catalog;
use crate::index::{GistIndex, IndexDef, IndexedCol, OrderedIndex};
use crate::morsel::ScanMetrics;
use crate::rowscan::{merge_access, scan_partition, PartitionView, ScanSite};
use crate::system_a::{build_history_tindex, overwrite_period, sequenced_dml, SequencedOps};
use crate::version::Version;
use bitempo_core::{
    obs, AppPeriod, Error, Key, Result, Row, SysPeriod, SysTime, TableDef, TableId, TemporalClass,
    Value,
};
use bitempo_storage::{Heap, SlotId};
use bitempo_tindex::{IndexFootprint, TemporalIndex};
use std::collections::HashMap;

#[derive(Debug, Default)]
struct TableD {
    /// The single physical table holding every version.
    all: Heap<Version>,
    /// Tuning indexes.
    indexes: Vec<OrderedIndex>,
    /// Index usable for key lookups (built by the Key+Time setting).
    key_index: Option<usize>,
    /// GiST index over the period rectangles.
    gist: Option<GistIndex>,
    /// Open versions per key — the bookkeeping any *application* simulating
    /// temporal tables must carry (the paper's §2.4 note that DML semantics
    /// fall to the application when support is not native).
    key_map: HashMap<Key, Vec<u64>>,
    /// Optional temporal index over the single flat table, maintained at
    /// DML time: System D is the showcase for inline maintenance because
    /// versions activate in commit order, keeping the event log monotone
    /// (except after manual-timestamp bulk loads, which the timeline's
    /// segment-skipping replay absorbs).
    tindex: Option<TemporalIndex>,
}

/// The System D engine. See module docs.
#[derive(Debug, Default)]
pub struct SystemD {
    catalog: Catalog,
    tables: Vec<TableD>,
    now: SysTime,
    tuning: TuningConfig,
}

impl SystemD {
    /// Creates an empty engine.
    pub fn new() -> SystemD {
        SystemD::default()
    }

    fn insert_version(&mut self, table: TableId, version: Version) {
        let def_key = self.catalog.def(table).key.clone();
        let t = self.table_mut(table);
        let slot64 = u64::from(t.all.insert(version.clone()).0);
        for ix in &mut t.indexes {
            ix.insert(&version, slot64);
        }
        if let Some(g) = &mut t.gist {
            g.insert(&version, slot64);
        }
        if let Some(tix) = &mut t.tindex {
            tix.insert(slot64, version.app, version.sys);
        }
        if version.sys.is_current() {
            let key = Key::from_row(&version.row, &def_key);
            t.key_map.entry(key).or_default().push(slot64);
        }
    }

    /// `TableId`s are issued densely by the catalog, so indexing with one it
    /// handed out cannot go out of bounds.
    fn table(&self, table: TableId) -> &TableD {
        // tblint: allow(TB004) TableId is catalog-issued and dense; sole indexing point for reads
        &self.tables[table.0 as usize]
    }

    fn table_mut(&mut self, table: TableId) -> &mut TableD {
        // tblint: allow(TB004) TableId is catalog-issued and dense; sole indexing point for writes
        &mut self.tables[table.0 as usize]
    }
}

impl SequencedOps for SystemD {
    fn def(&self, table: TableId) -> &TableDef {
        self.catalog.def(table)
    }
    fn pending_time(&self) -> SysTime {
        self.now.next()
    }
    fn open_slots(&self, table: TableId, key: &Key) -> Vec<u64> {
        self.table(table)
            .key_map
            .get(key)
            .cloned()
            .unwrap_or_default()
    }
    fn peek(&self, table: TableId, slot: u64) -> Option<Version> {
        self.table(table).all.get(SlotId(slot as u32)).cloned()
    }
    fn close(&mut self, table: TableId, slot64: u64, end: SysTime) -> Result<Version> {
        let def_key = self.catalog.def(table).key.clone();
        let nontemporal = self.catalog.def(table).temporal == TemporalClass::NonTemporal;
        let t = self.table_mut(table);
        let slot = SlotId(slot64 as u32);
        let Some(before) = t.all.get(slot).cloned() else {
            return Err(Error::Internal(format!(
                "closing slot {slot64} with no live version"
            )));
        };
        let key = Key::from_row(&before.row, &def_key);
        if let Some(slots) = t.key_map.get_mut(&key) {
            slots.retain(|&s| s != slot64);
        }
        let never_visible = before.sys.start >= end;
        if nontemporal || never_visible {
            // Non-versioned tables (and never-visible versions) vanish.
            t.all.remove(slot);
            for ix in &mut t.indexes {
                ix.remove(&before, slot64);
            }
            // GiST entries are left stale: the tombstoned slot resolves to
            // nothing at probe time, which is sound (conservative rects).
        } else if let Some(v) = t.all.get_mut(slot) {
            // In-place close: the version stays put with an ended period.
            // Period *starts* are the only indexed boundaries, so B-Tree
            // entries remain valid; the GiST rect becomes conservative.
            v.sys = SysPeriod::new(v.sys.start, end);
        }
        if let Some(tix) = &mut t.tindex {
            // Invalidating removed slots too keeps candidate sets tight;
            // a stale candidate resolves to nothing at probe time anyway.
            tix.close(slot64, end);
        }
        Ok(before)
    }
    fn insert_version_at(&mut self, table: TableId, version: Version) {
        self.insert_version(table, version);
    }
}

impl BitemporalEngine for SystemD {
    fn name(&self) -> &'static str {
        "System D"
    }

    fn architecture(&self) -> &'static str {
        "row store without temporal support; single table with explicit period columns; \
         manual timestamps and bulk load; B-Tree and GiST indexes via tuning"
    }

    fn create_table(&mut self, def: TableDef) -> Result<TableId> {
        let id = self.catalog.create(def)?;
        self.tables.push(TableD::default());
        Ok(id)
    }

    fn resolve(&self, name: &str) -> Result<TableId> {
        self.catalog.resolve(name)
    }

    fn table_names(&self) -> Vec<String> {
        self.catalog.iter().map(|(_, d)| d.name.clone()).collect()
    }

    fn table_def(&self, table: TableId) -> &TableDef {
        self.catalog.def(table)
    }

    fn apply_tuning(&mut self, tuning: &TuningConfig) -> Result<()> {
        self.tuning = tuning.clone();
        let defs: Vec<(TableId, TableDef)> =
            self.catalog.iter().map(|(i, d)| (i, d.clone())).collect();
        for (id, def) in defs {
            let mut index_defs: Vec<IndexDef> = Vec::new();
            let mut key_index = None;
            if tuning.time_index {
                if def.has_app_time() {
                    index_defs.push(IndexDef {
                        name: format!("ix_app_{}", def.name),
                        cols: vec![IndexedCol::AppStart],
                        kind: IndexKind::BTree,
                    });
                }
                if def.has_system_time() {
                    index_defs.push(IndexDef {
                        name: format!("ix_sys_{}", def.name),
                        cols: vec![IndexedCol::SysStart],
                        kind: IndexKind::BTree,
                    });
                }
            }
            if tuning.key_time_index && !def.key.is_empty() {
                let mut cols: Vec<IndexedCol> =
                    def.key.iter().map(|&c| IndexedCol::Value(c)).collect();
                cols.push(IndexedCol::SysStart);
                key_index = Some(index_defs.len());
                index_defs.push(IndexDef {
                    name: format!("ix_key_{}", def.name),
                    cols,
                    kind: IndexKind::BTree,
                });
            }
            for (tname, cname) in &tuning.value_index {
                if *tname == def.name {
                    let col = def.schema.col(cname)?;
                    index_defs.push(IndexDef {
                        name: format!("ix_val_{}_{}", def.name, cname),
                        cols: vec![IndexedCol::Value(col)],
                        kind: IndexKind::BTree,
                    });
                }
            }
            let t = self.table_mut(id);
            t.indexes = index_defs.into_iter().map(OrderedIndex::new).collect();
            t.key_index = key_index;
            t.gist = (tuning.gist && def.has_system_time())
                .then(|| GistIndex::new(format!("gist_{}", def.name)));
            let entries: Vec<(u64, Version)> = t
                .all
                .iter()
                .map(|(s, v)| (u64::from(s.0), v.clone()))
                .collect();
            for ix in &mut t.indexes {
                for (slot, v) in &entries {
                    ix.insert(v, *slot);
                }
            }
            if let Some(g) = &mut t.gist {
                for (slot, v) in &entries {
                    g.insert(v, *slot);
                }
            }
            t.tindex = (tuning.temporal_index && def.has_system_time())
                .then(|| build_history_tindex(&def.name, &t.all));
        }
        Ok(())
    }

    fn insert(&mut self, table: TableId, row: Row, app: Option<AppPeriod>) -> Result<()> {
        let def = self.catalog.def(table);
        if row.arity() != def.schema.arity() {
            return Err(Error::Invalid(format!(
                "arity {} vs schema {} for {}",
                row.arity(),
                def.schema.arity(),
                def.name
            )));
        }
        let app = match (def.temporal, app) {
            (TemporalClass::Bitemporal, Some(p)) if p.is_empty() => {
                return Err(Error::EmptyPeriod(format!("{p}")))
            }
            (TemporalClass::Bitemporal, Some(p)) => p,
            (TemporalClass::Bitemporal, None) => AppPeriod::ALL,
            (_, Some(_)) => {
                return Err(Error::Unsupported(format!(
                    "application period on table {}",
                    def.name
                )))
            }
            (_, None) => AppPeriod::ALL,
        };
        let sys = if def.temporal == TemporalClass::NonTemporal {
            SysPeriod::ALL
        } else {
            SysPeriod::since(self.pending_time())
        };
        self.insert_version(table, Version { row, app, sys });
        Ok(())
    }

    fn update(
        &mut self,
        table: TableId,
        key: &Key,
        updates: &[(usize, Value)],
        portion: Option<AppPeriod>,
    ) -> Result<usize> {
        sequenced_dml(self, table, key, portion, Some(updates))
    }

    fn delete(&mut self, table: TableId, key: &Key, portion: Option<AppPeriod>) -> Result<usize> {
        sequenced_dml(self, table, key, portion, None)
    }

    fn overwrite_app_period(
        &mut self,
        table: TableId,
        key: &Key,
        period: AppPeriod,
    ) -> Result<usize> {
        overwrite_period(self, table, key, period)
    }

    fn commit(&mut self) -> SysTime {
        self.now = self.now.next();
        self.now
    }

    fn now(&self) -> SysTime {
        self.now
    }

    fn advance_clock(&mut self, to: SysTime) {
        if self.now < to {
            self.now = to;
        }
    }

    fn scan(
        &self,
        table: TableId,
        sys: &SysSpec,
        app: &AppSpec,
        preds: &[ColRange],
    ) -> Result<ScanOutput> {
        let def = self.catalog.def(table);
        let t = self.table(table);
        let _span = obs::span_dyn("engine", || format!("System D scan {}", def.name));
        let view = PartitionView {
            source: &t.all,
            pk: t.key_index.and_then(|i| t.indexes.get(i)),
            indexes: &t.indexes,
            gist: t.gist.as_ref(),
            tindex: t.tindex.as_ref(),
        };
        let mut rows = Vec::new();
        let mut metrics = ScanMetrics::default();
        let path = scan_partition(
            ScanSite {
                engine: "System D",
                table: &def.name,
                partition: "all",
            },
            &view,
            def,
            sys,
            app,
            preds,
            self.now,
            self.tuning.adaptive,
            self.tuning.exec(),
            &mut rows,
            &mut metrics,
        )?;
        let out = ScanOutput {
            access: merge_access(vec![path.clone()]),
            partition_paths: vec![path],
            rows,
            metrics,
        };
        #[cfg(debug_assertions)]
        crate::api::validate_scan_output(def, sys, app, preds, &out)
            .unwrap_or_else(|msg| panic!("System D scan postcondition: {msg}"));
        Ok(out)
    }

    fn lookup_key(
        &self,
        table: TableId,
        key: &Key,
        sys: &SysSpec,
        app: &AppSpec,
    ) -> Result<ScanOutput> {
        let def = self.catalog.def(table);
        let preds: Vec<ColRange> = def
            .key
            .iter()
            .zip(key.to_values())
            .map(|(&c, v)| ColRange::eq(c, v))
            .collect();
        self.scan(table, sys, app, &preds)
    }

    fn stats(&self, table: TableId) -> TableStats {
        let t = self.table(table);
        let current = t.key_map.values().map(Vec::len).sum();
        TableStats {
            current_rows: current,
            history_rows: t.all.len() - current,
        }
    }

    fn supports_manual_system_time(&self) -> bool {
        true
    }

    fn bulk_load(
        &mut self,
        table: TableId,
        versions: Vec<(Row, AppPeriod, SysPeriod)>,
    ) -> Result<()> {
        for (row, app, sys) in versions {
            if sys.is_empty() {
                return Err(Error::EmptyPeriod(format!("{sys}")));
            }
            self.insert_version(table, Version { row, app, sys });
            if self.now < sys.start {
                self.now = sys.start;
            }
            if sys.end != SysTime::MAX && self.now < sys.end {
                self.now = sys.end;
            }
        }
        // Manual timestamps arrive out of order; re-sort the endpoint lists
        // so the next probe is not stuck on the linear tail.
        if let Some(tix) = &mut self.table_mut(table).tindex {
            tix.prepare();
        }
        Ok(())
    }

    fn checkpoint(&mut self) {
        // One flat table, no staged reorganization to flush — but a tuned
        // temporal index re-sorts its endpoint lists at quiescent points.
        for t in &mut self.tables {
            if let Some(tix) = &mut t.tindex {
                tix.prepare();
            }
        }
    }

    fn temporal_index_footprint(&self) -> IndexFootprint {
        self.tables
            .iter()
            .filter_map(|t| t.tindex.as_ref())
            .fold(IndexFootprint::default(), |acc, tix| {
                acc.merged(tix.footprint())
            })
    }

    fn snapshot_versions(&self, table: TableId) -> Result<Vec<Version>> {
        // One flat table; removed (never-visible / non-temporal-deleted)
        // slots are tombstones the iterator already skips.
        Ok(self
            .table(table)
            .all
            .iter()
            .map(|(_, v)| v.clone())
            .collect())
    }

    fn restore(&mut self, table: TableId, versions: Vec<Version>, now: SysTime) -> Result<()> {
        *self.table_mut(table) = TableD::default();
        for v in versions {
            // insert_version handles both open and closed versions: key_map
            // entries are only added for currently-open ones, and all tuning
            // indexes are empty until tuning is re-applied.
            self.insert_version(table, v);
        }
        self.now = now;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::AccessPath;
    use crate::testutil::{bitemp_table, insert_rows, simple_row};
    use bitempo_core::{AppDate, Period};

    #[test]
    fn single_partition_even_for_current_queries() {
        let mut e = SystemD::new();
        let t = e.create_table(bitemp_table("t")).unwrap();
        insert_rows(&mut e, t, &[(1, 1), (2, 2)]);
        e.update(t, &Key::int(1), &[(1, Value::Int(9))], None)
            .unwrap();
        e.commit();
        let out = e.scan(t, &SysSpec::Current, &AppSpec::All, &[]).unwrap();
        assert_eq!(out.rows.len(), 2);
        // The scan had to walk all three stored versions in one heap.
        assert_eq!(out.access, AccessPath::FullScan { partitions: 1 });
        let s = e.stats(t);
        assert_eq!((s.current_rows, s.history_rows), (2, 1));
    }

    #[test]
    fn bulk_load_with_manual_timestamps() {
        let mut e = SystemD::new();
        let t = e.create_table(bitemp_table("t")).unwrap();
        assert!(e.supports_manual_system_time());
        e.bulk_load(
            t,
            vec![
                (
                    simple_row(1, 10),
                    AppPeriod::ALL,
                    SysPeriod::new(SysTime(1), SysTime(5)),
                ),
                (
                    simple_row(1, 11),
                    AppPeriod::ALL,
                    SysPeriod::since(SysTime(5)),
                ),
            ],
        )
        .unwrap();
        assert_eq!(e.now(), SysTime(5));
        let out = e
            .scan(t, &SysSpec::AsOf(SysTime(2)), &AppSpec::All, &[])
            .unwrap();
        assert_eq!(out.rows[0].get(1), &Value::Int(10));
        let out = e.scan(t, &SysSpec::Current, &AppSpec::All, &[]).unwrap();
        assert_eq!(out.rows[0].get(1), &Value::Int(11));
        // DML after bulk load continues the timeline.
        e.update(t, &Key::int(1), &[(1, Value::Int(12))], None)
            .unwrap();
        e.commit();
        let out = e.scan(t, &SysSpec::Current, &AppSpec::All, &[]).unwrap();
        assert_eq!(out.rows[0].get(1), &Value::Int(12));
    }

    #[test]
    fn bulk_load_rejected_on_other_engines() {
        let mut e = crate::SystemA::new();
        let t = e.create_table(bitemp_table("t")).unwrap();
        assert!(!e.supports_manual_system_time());
        let err = e.bulk_load(t, vec![]);
        assert!(matches!(err, Err(Error::Unsupported(_))));
    }

    #[test]
    fn gist_tuning_is_used_and_correct() {
        let mut e = SystemD::new();
        let t = e.create_table(bitemp_table("t")).unwrap();
        // Bounded app periods [i, i+10): a point probe at day 0 matches only
        // row 0, so the costed GiST estimate beats the sequential scan.
        for i in 0..200 {
            e.insert(
                t,
                simple_row(i, i * 2),
                Some(Period::new(AppDate(i), AppDate(i + 10))),
            )
            .unwrap();
            e.commit();
        }
        let no_index = e
            .scan(t, &SysSpec::Current, &AppSpec::AsOf(AppDate(0)), &[])
            .unwrap();
        // GiST only — with a time B-Tree tuned as well, the cheaper
        // per-row B-Tree probe would legitimately outbid the GiST.
        e.apply_tuning(&TuningConfig {
            gist: true,
            ..Default::default()
        })
        .unwrap();
        let gist = e
            .scan(t, &SysSpec::Current, &AppSpec::AsOf(AppDate(0)), &[])
            .unwrap();
        assert!(
            matches!(gist.access, AccessPath::GistScan(_)),
            "selective probe should pick the GiST, got {}",
            gist.access
        );
        let mut a = no_index.rows.clone();
        let mut b = gist.rows.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "GiST scan must return the same rows as the seq scan");
        // A window covering every period is not worth a probe: the cost
        // model falls back to the sequential scan.
        let wide = e
            .scan(
                t,
                &SysSpec::Current,
                &AppSpec::Range(Period::new(AppDate(0), AppDate(500))),
                &[],
            )
            .unwrap();
        assert_eq!(wide.access, AccessPath::FullScan { partitions: 1 });
        assert_eq!(wide.rows.len(), 200);
    }

    #[test]
    fn gist_stays_correct_after_post_tuning_dml() {
        let mut e = SystemD::new();
        let t = e.create_table(bitemp_table("t")).unwrap();
        // Enough rows with bounded periods [i, i+5) that a point probe is
        // worth the GiST's per-row cost.
        for i in 1..=80 {
            e.insert(
                t,
                simple_row(i, i),
                Some(Period::new(AppDate(i), AppDate(i + 5))),
            )
            .unwrap();
            e.commit();
        }
        e.apply_tuning(&TuningConfig {
            gist: true,
            ..Default::default()
        })
        .unwrap();
        // Close a version after the GiST was built (rect goes conservative)
        // and insert a fresh key straddling the probe date.
        e.update(t, &Key::int(2), &[(1, Value::Int(9))], None)
            .unwrap();
        e.commit();
        e.insert(
            t,
            simple_row(81, 81),
            Some(Period::new(AppDate(2), AppDate(7))),
        )
        .unwrap();
        e.commit();
        let out = e
            .scan(t, &SysSpec::Current, &AppSpec::AsOf(AppDate(2)), &[])
            .unwrap();
        assert!(
            matches!(out.access, AccessPath::GistScan(_)),
            "expected a GiST scan, got {}",
            out.access
        );
        let mut vals: Vec<i64> = out
            .rows
            .iter()
            .map(|r| r.get(1).as_int().unwrap())
            .collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![1, 9, 81]);
    }

    #[test]
    fn key_time_index_serves_lookups() {
        let mut e = SystemD::new();
        let t = e.create_table(bitemp_table("t")).unwrap();
        for i in 0..100 {
            e.insert(t, simple_row(i, i), None).unwrap();
            e.commit();
        }
        let before = e
            .lookup_key(t, &Key::int(5), &SysSpec::All, &AppSpec::All)
            .unwrap();
        assert_eq!(before.access, AccessPath::FullScan { partitions: 1 });
        e.apply_tuning(&TuningConfig::key_time()).unwrap();
        let after = e
            .lookup_key(t, &Key::int(5), &SysSpec::All, &AppSpec::All)
            .unwrap();
        assert!(matches!(after.access, AccessPath::KeyLookup(_)));
        assert_eq!(after.rows, before.rows);
    }

    #[test]
    fn temporal_tuning_probes_flat_table_with_inline_maintenance() {
        let mut e = SystemD::new();
        let t = e.create_table(bitemp_table("t")).unwrap();
        insert_rows(&mut e, t, &[(1, 0)]);
        e.apply_tuning(&TuningConfig::temporal()).unwrap();
        // All maintenance happens at DML time, after the index was built.
        for i in 0..8 {
            e.update(t, &Key::int(1), &[(1, Value::Int(i))], None)
                .unwrap();
            e.commit();
        }
        let early = e.now();
        for i in 0..200 {
            e.update(t, &Key::int(1), &[(1, Value::Int(100 + i))], None)
                .unwrap();
            e.commit();
        }
        let probed = e
            .scan(t, &SysSpec::AsOf(early), &AppSpec::All, &[])
            .unwrap();
        assert!(
            matches!(probed.access, AccessPath::TemporalProbe(_)),
            "expected a temporal probe, got {}",
            probed.access
        );
        assert!(probed.metrics.index_hits > 0);
        let plain = {
            let mut bare = SystemD::new();
            let t2 = bare.create_table(bitemp_table("t")).unwrap();
            insert_rows(&mut bare, t2, &[(1, 0)]);
            for i in 0..8 {
                bare.update(t2, &Key::int(1), &[(1, Value::Int(i))], None)
                    .unwrap();
                bare.commit();
            }
            for i in 0..200 {
                bare.update(t2, &Key::int(1), &[(1, Value::Int(100 + i))], None)
                    .unwrap();
                bare.commit();
            }
            bare.scan(t2, &SysSpec::AsOf(early), &AppSpec::All, &[])
                .unwrap()
        };
        assert_eq!(probed.rows, plain.rows);
        // Bulk load with manual timestamps stays correct (out-of-order
        // events; the superset re-check filters anything stale).
        e.bulk_load(
            t,
            vec![(
                simple_row(2, 2),
                AppPeriod::ALL,
                SysPeriod::new(SysTime(1), SysTime(3)),
            )],
        )
        .unwrap();
        let past = e
            .scan(t, &SysSpec::AsOf(SysTime(2)), &AppSpec::All, &[])
            .unwrap();
        assert!(past
            .rows
            .iter()
            .any(|r| r.get(0) == &Value::Int(2) && r.get(1) == &Value::Int(2)));
        assert!(e.temporal_index_footprint().events > 0);
    }
}
