//! Partition scanning with cost-based access-path selection.
//!
//! Every row-store engine answers a scan per physical partition by choosing
//! among: primary-key lookup, B-Tree index scan, GiST scan, temporal-index
//! probe, or a full scan. All applicable paths are enumerated into a
//! [`bitempo_query::optimizer::Memo`], costed from the partition's row
//! count and each index's candidate-fraction estimate, and the cheapest
//! wins. The cost weights keep the regime the paper measured — indexes pay
//! off only for selective predicates, and optimizers flip to table scans
//! otherwise (§5.3.2, §5.4.1, §5.9) — but the flip point now falls out of
//! relative work, not a hard-coded threshold. With `adaptive` tuning on,
//! observed actual-vs-estimated row counts feed the optimizer's feedback
//! store so a repeated misestimated query re-plans onto the cheaper path.

use crate::api::{AccessPath, AppSpec, ColRange, SysSpec};
use crate::index::{GistIndex, IndexedCol, OrderedIndex};
use crate::morsel::{run_morsels, MorselExec, ScanMetrics};
use crate::version::Version;
use bitempo_core::{obs, Result, Row, SysTime, TableDef, Value};
use bitempo_query::optimizer::{self, Alternative, PathKind, ValuePreds};
use bitempo_query::plan::{AppClass, SysClass};
use bitempo_storage::{Heap, Rect};
use bitempo_tindex::{AppProbe, ProbeCost, SysProbe, TemporalIndex};
use std::ops::{Bound, Range};

/// Identifies where a partition scan runs, for access-path traces: which
/// engine, table, and physical partition. Plain borrowed labels — building
/// one costs nothing, so engines pass it unconditionally.
#[derive(Debug, Clone, Copy)]
pub struct ScanSite<'a> {
    /// Engine display name ("System A" .. "System D").
    pub engine: &'a str,
    /// Table name.
    pub table: &'a str,
    /// Physical partition label ("current", "history", "staging", "all").
    pub partition: &'a str,
}

impl ScanSite<'_> {
    /// Records one [`obs::ScanTrace`] for this site from counter deltas.
    /// No-op (and no allocation) while tracing is disabled.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        access: &AccessPath,
        delta: ScanMetrics,
        rows_emitted: u64,
        workers: usize,
        start_nanos: u64,
        dur_nanos: u64,
    ) {
        obs::record_scan(|| obs::ScanTrace {
            engine: self.engine.to_string(),
            table: self.table.to_string(),
            partition: self.partition.to_string(),
            access: access.to_string(),
            rows_visited: delta.rows_visited,
            rows_emitted,
            versions_pruned: delta.versions_pruned,
            index_probes: delta.index_probes,
            index_hits: delta.index_hits,
            index_node_visits: delta.index_node_visits,
            morsels: delta.morsels,
            planned_rows: delta.planned_rows,
            workers: workers as u64,
            start_nanos,
            dur_nanos,
        });
    }

    /// This site as the optimizer's borrowed feedback key.
    fn feedback(&self) -> optimizer::FeedbackSite<'_> {
        optimizer::FeedbackSite {
            engine: self.engine,
            table: self.table,
            partition: self.partition,
        }
    }
}

/// A slot-addressable collection of versions (one physical partition).
///
/// `Sync` is a supertrait so sequential scans over a partition can be split
/// into morsels and executed by scoped worker threads (see
/// [`crate::morsel`]); every implementation is plain owned data.
pub trait VersionSource: Sync {
    /// The version stored at `slot`, if live.
    fn version(&self, slot: u64) -> Option<&Version>;
    /// Upper bound (exclusive) on scan positions: the range `0..scan_units()`
    /// covers every live version, and disjoint sub-ranges visit disjoint
    /// versions. For heaps this counts tombstoned slots too.
    fn scan_units(&self) -> usize;
    /// All live `(slot, version)` pairs whose scan position is in `range`,
    /// in position order.
    fn for_each_in(&self, range: Range<usize>, f: &mut dyn FnMut(u64, &Version));
    /// All live `(slot, version)` pairs, in position order.
    fn for_each(&self, f: &mut dyn FnMut(u64, &Version)) {
        self.for_each_in(0..self.scan_units(), f);
    }
    /// Number of live versions.
    fn len(&self) -> usize;
    /// True when the partition holds no live versions.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl VersionSource for Heap<Version> {
    fn version(&self, slot: u64) -> Option<&Version> {
        self.get(bitempo_storage::SlotId(slot as u32))
    }
    fn scan_units(&self) -> usize {
        self.allocated()
    }
    fn for_each_in(&self, range: Range<usize>, f: &mut dyn FnMut(u64, &Version)) {
        for (slot, v) in self.iter_range(range) {
            f(u64::from(slot.0), v);
        }
    }
    fn len(&self) -> usize {
        Heap::len(self)
    }
}

/// A materialized partition (System B's reconstructed current partition),
/// sorted by slot for binary-search resolution of index probes.
pub struct Reconstructed(pub Vec<(u64, Version)>);

impl VersionSource for Reconstructed {
    fn version(&self, slot: u64) -> Option<&Version> {
        self.0
            .binary_search_by_key(&slot, |(s, _)| *s)
            .ok()
            .and_then(|i| self.0.get(i))
            .map(|(_, v)| v)
    }
    fn scan_units(&self) -> usize {
        self.0.len()
    }
    fn for_each_in(&self, range: Range<usize>, f: &mut dyn FnMut(u64, &Version)) {
        let end = range.end.min(self.0.len());
        for (slot, v) in self.0.get(range.start.min(end)..end).unwrap_or(&[]) {
            f(*slot, v);
        }
    }
    fn len(&self) -> usize {
        self.0.len()
    }
}

/// One partition's access structures, borrowed for the duration of a scan.
pub struct PartitionView<'a> {
    /// The versions.
    pub source: &'a dyn VersionSource,
    /// Primary-key index (leading columns = key columns), if any.
    pub pk: Option<&'a OrderedIndex>,
    /// Secondary ordered indexes.
    pub indexes: &'a [OrderedIndex],
    /// GiST index, if any (System D).
    pub gist: Option<&'a GistIndex>,
    /// Temporal index (Timeline + interval index), if attached.
    pub tindex: Option<&'a TemporalIndex>,
}

/// The [`SysProbe`] a system-time spec implies, or `None` when the spec
/// does not constrain system time.
pub fn sys_probe_for(sys: &SysSpec) -> Option<SysProbe> {
    match sys {
        SysSpec::Current => Some(SysProbe::CurrentOnly),
        SysSpec::AsOf(t) => Some(SysProbe::At(*t)),
        SysSpec::Range(p) => Some(SysProbe::During(*p)),
        SysSpec::All => None,
    }
}

/// The [`AppProbe`] an application-time spec implies, or `None` when the
/// spec does not constrain application time.
pub fn app_probe_for(app: &AppSpec) -> Option<AppProbe> {
    match app {
        AppSpec::AsOf(d) => Some(AppProbe::At(*d)),
        AppSpec::Range(p) => Some(AppProbe::During(*p)),
        AppSpec::All => None,
    }
}

/// The optimizer predicate class of a scan: which temporal dimensions are
/// constrained and what shape the pushed value predicates take. This is the
/// key granularity of the adaptive feedback store.
pub fn pred_class(sys: &SysSpec, app: &AppSpec, preds: &[ColRange]) -> optimizer::PredClass {
    let values = if preds.is_empty() {
        ValuePreds::None
    } else if preds
        .iter()
        .all(|p| matches!((&p.lo, &p.hi), (Bound::Included(a), Bound::Included(b)) if a == b))
    {
        ValuePreds::Point
    } else {
        ValuePreds::Range
    };
    optimizer::PredClass {
        sys: match sys {
            SysSpec::Current => SysClass::Current,
            SysSpec::AsOf(_) => SysClass::AsOf,
            SysSpec::Range(_) => SysClass::Range,
            SysSpec::All => SysClass::All,
        },
        app: match app {
            AppSpec::AsOf(_) => AppClass::AsOf,
            AppSpec::Range(_) => AppClass::Range,
            AppSpec::All => AppClass::All,
        },
        values,
    }
}

/// The range on an index's leading column implied by the temporal specs or
/// pushed predicates, with an owned-bounds representation.
struct ProbeRange {
    lo: Bound<Value>,
    hi: Bound<Value>,
}

fn probe_range_for(
    index: &OrderedIndex,
    sys: &SysSpec,
    app: &AppSpec,
    preds: &[ColRange],
) -> Option<ProbeRange> {
    match index.def.cols.first()? {
        IndexedCol::Value(c) => {
            let p = preds.iter().find(|p| p.col == *c)?;
            Some(ProbeRange {
                lo: p.lo.clone(),
                hi: p.hi.clone(),
            })
        }
        IndexedCol::AppStart => match app {
            // app_start <= point < app_end: the index bounds only the start.
            AppSpec::AsOf(d) => Some(ProbeRange {
                lo: Bound::Unbounded,
                hi: Bound::Included(Value::Date(*d)),
            }),
            AppSpec::Range(p) => Some(ProbeRange {
                lo: Bound::Unbounded,
                hi: Bound::Excluded(Value::Date(p.end)),
            }),
            AppSpec::All => None,
        },
        IndexedCol::SysStart => match sys {
            SysSpec::AsOf(t) => Some(ProbeRange {
                lo: Bound::Unbounded,
                hi: Bound::Included(Value::SysTime(*t)),
            }),
            SysSpec::Range(p) => Some(ProbeRange {
                lo: Bound::Unbounded,
                hi: Bound::Excluded(Value::SysTime(p.end)),
            }),
            SysSpec::Current | SysSpec::All => None,
        },
        IndexedCol::SysEnd => match sys {
            // sys_end > point (or > range.start).
            SysSpec::AsOf(t) => Some(ProbeRange {
                lo: Bound::Excluded(Value::SysTime(*t)),
                hi: Bound::Unbounded,
            }),
            SysSpec::Range(p) => Some(ProbeRange {
                lo: Bound::Excluded(Value::SysTime(p.start)),
                hi: Bound::Unbounded,
            }),
            SysSpec::Current | SysSpec::All => None,
        },
    }
}

/// The GiST query rectangle implied by the temporal specs, or `None` when
/// neither dimension constrains the scan (a GiST probe would be a full walk).
pub fn gist_query_rect(sys: &SysSpec, app: &AppSpec, now: SysTime) -> Option<Rect> {
    let (x_min, x_max) = match app {
        AppSpec::AsOf(d) => (d.0, d.0),
        AppSpec::Range(p) => (p.start.0, p.end.0.saturating_sub(1)),
        AppSpec::All => (i64::MIN + 1, i64::MAX - 1),
    };
    let sys_pt = |t: SysTime| t.0.min((i64::MAX - 1) as u64) as i64;
    let (y_min, y_max) = match sys {
        SysSpec::Current => (sys_pt(now), sys_pt(now)),
        SysSpec::AsOf(t) => (sys_pt(*t), sys_pt(*t)),
        SysSpec::Range(p) => (sys_pt(p.start), sys_pt(p.end).saturating_sub(1)),
        SysSpec::All => (0, i64::MAX - 1),
    };
    if matches!(app, AppSpec::All) && matches!(sys, SysSpec::All) {
        return None;
    }
    Some(Rect::new(x_min, x_max, y_min, y_max))
}

/// Execution recipe for one enumerated alternative, kept parallel to the
/// memo's insertion order so the winning index maps back to the borrowed
/// access structures without re-deriving probe arguments.
enum Choice<'a> {
    /// Morsel-parallel sequential scan.
    Seq,
    /// Exact prefix probe of the primary-key index with the pinned values.
    Key(&'a OrderedIndex, Vec<Value>),
    /// Range probe of an ordered index.
    BTree(&'a OrderedIndex, ProbeRange),
    /// Rectangle probe of the GiST.
    Gist(&'a GistIndex, Rect),
    /// Temporal-index candidate probe.
    Tix(&'a TemporalIndex, Option<SysProbe>, Option<AppProbe>),
}

/// Scans one partition: picks an access path, applies residual filters, and
/// appends qualifying output rows (in `def.scan_schema()` layout) to `out`.
/// Counters accumulate into `metrics`. Sequential scans are morsel-parallel
/// per `exec` (`workers <= 1` runs inline); the index paths stay serial, as
/// their probe result sets are already small by construction. Returns the
/// access path taken, or [`bitempo_core::Error::WorkerPanicked`] if a scan
/// worker panicked (the panic is contained; partial output is discarded).
///
/// The path is chosen by the cost-based memo in
/// [`bitempo_query::optimizer`]; with `adaptive` set, actual row counts are
/// fed back so repeated scans of the same predicate class re-plan on the
/// observed estimate error. Costs price total work, not wall clock, so the
/// chosen path — and the output — is identical across worker counts.
///
/// When tracing is enabled ([`obs::is_enabled`]) one [`obs::ScanTrace`] is
/// recorded for `site`; the disabled path is a single flag check.
#[allow(clippy::too_many_arguments)]
pub fn scan_partition(
    site: ScanSite<'_>,
    part: &PartitionView<'_>,
    def: &TableDef,
    sys: &SysSpec,
    app: &AppSpec,
    preds: &[ColRange],
    now: SysTime,
    adaptive: bool,
    exec: MorselExec,
    out: &mut Vec<Row>,
    metrics: &mut ScanMetrics,
) -> Result<AccessPath> {
    let Some(start) = obs::trace_clock() else {
        return scan_partition_inner(
            site, part, def, sys, app, preds, now, adaptive, exec, out, metrics,
        );
    };
    let rows_before = out.len();
    let before = *metrics;
    let result = scan_partition_inner(
        site, part, def, sys, app, preds, now, adaptive, exec, out, metrics,
    );
    let end = obs::trace_clock().unwrap_or(start);
    if let Ok(path) = &result {
        let delta = ScanMetrics {
            morsels: metrics.morsels - before.morsels,
            rows_visited: metrics.rows_visited - before.rows_visited,
            versions_pruned: metrics.versions_pruned - before.versions_pruned,
            index_probes: metrics.index_probes - before.index_probes,
            index_hits: metrics.index_hits - before.index_hits,
            index_node_visits: metrics.index_node_visits - before.index_node_visits,
            planned_rows: metrics.planned_rows - before.planned_rows,
        };
        site.record(
            path,
            delta,
            (out.len() - rows_before) as u64,
            exec.workers.max(1),
            start,
            end.saturating_sub(start),
        );
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn scan_partition_inner(
    site: ScanSite<'_>,
    part: &PartitionView<'_>,
    def: &TableDef,
    sys: &SysSpec,
    app: &AppSpec,
    preds: &[ColRange],
    now: SysTime,
    adaptive: bool,
    exec: MorselExec,
    out: &mut Vec<Row>,
    metrics: &mut ScanMetrics,
) -> Result<AccessPath> {
    let n = part.source.len();
    // An empty partition defeats every estimator: candidate fractions would
    // divide by zero, and the old `len().max(1)` patch made an empty
    // partition estimate fraction 0 and unconditionally "win" the temporal
    // probe. There is nothing to choose between — short-circuit to a
    // trivial sequential pass that visits nothing.
    if n == 0 {
        return Ok(AccessPath::FullScan { partitions: 1 });
    }

    let emit = |v: &Version, out: &mut Vec<Row>, m: &mut ScanMetrics| -> bool {
        m.rows_visited += 1;
        if v.matches(sys, app) && v.matches_preds(preds) {
            out.push(v.output_row(def));
            true
        } else {
            m.versions_pruned += 1;
            false
        }
    };

    // Sequential execution, split into morsels. Merging in morsel order
    // keeps the output identical to a single-threaded scan for any worker
    // count.
    let run_seq = |out: &mut Vec<Row>, metrics: &mut ScanMetrics| -> Result<AccessPath> {
        let (rows, scan_metrics) = run_morsels(part.source.scan_units(), exec, |range, buf, m| {
            part.source.for_each_in(range, &mut |_, v| {
                emit(v, buf, m);
            });
        })?;
        metrics.merge(&scan_metrics);
        out.extend(rows);
        Ok(AccessPath::FullScan { partitions: 1 })
    };

    // Enumerate every applicable physical alternative into the memo, with a
    // parallel list of execution recipes in the same insertion order.
    let mut memo = optimizer::Memo::new(n);
    let mut choices: Vec<Choice<'_>> = Vec::new();

    memo.add(Alternative::seq());
    choices.push(Choice::Seq);

    // Primary-key lookup, when the predicates pin every key column. The
    // candidate set is exact, so the estimate is one row's share.
    if let Some(pk) = part.pk {
        if let Some(key_vals) = full_key_equality(def, preds) {
            memo.add(Alternative::new(
                PathKind::KeyLookup,
                pk.def.name.clone(),
                Some(1.0 / n as f64),
            ));
            choices.push(Choice::Key(pk, key_vals));
        }
    }

    // B-Tree range probes on every ordered index whose leading column the
    // query constrains.
    for index in part.indexes.iter().chain(part.pk) {
        let Some(range) = probe_range_for(index, sys, app, preds) else {
            continue;
        };
        let sel = match index.estimate_selectivity(bound_ref(&range.lo), bound_ref(&range.hi)) {
            Some(s) => s,
            // Non-estimable leading column (strings): only an equality
            // probe has a principled estimate — one distinct key's share of
            // the index. An empty index has no keys to share; skip it.
            None => match (&range.lo, &range.hi) {
                (Bound::Included(a), Bound::Included(b)) if a == b => {
                    match index.distinct_first() {
                        0 => continue,
                        d => 1.0 / d as f64,
                    }
                }
                _ => continue,
            },
        };
        memo.add(Alternative::new(
            PathKind::BTreeRange,
            index.def.name.clone(),
            Some(sel),
        ));
        choices.push(Choice::BTree(index, range));
    }

    // GiST rectangle probe, when present and the query has a temporal
    // window — costed like every other path, not preferred by fiat.
    if let (Some(gist), Some(rect)) = (part.gist, gist_query_rect(sys, app, now)) {
        let frac = gist.estimate_fraction(&rect);
        memo.add(Alternative::new(
            PathKind::GistProbe,
            gist.name.clone(),
            Some(frac),
        ));
        choices.push(Choice::Gist(gist, rect));
    }

    // Temporal index, applicable whenever either temporal dimension is
    // constrained. Candidates are a superset, re-checked by `emit`, and
    // arrive sorted by slot so output order matches a sequential scan.
    if let Some(tix) = part.tindex {
        let sys_probe = sys_probe_for(sys);
        let app_probe = app_probe_for(app);
        if sys_probe.is_some() || app_probe.is_some() {
            let frac = tix.estimate_fraction(sys_probe.as_ref(), app_probe.as_ref(), n);
            memo.add(Alternative::new(
                PathKind::TemporalProbe,
                tix.name().to_string(),
                Some(frac),
            ));
            choices.push(Choice::Tix(tix, sys_probe, app_probe));
        }
    }

    let class = pred_class(sys, app, preds);
    let fsite = site.feedback();
    let with_feedback = |kind: PathKind, frac: f64| {
        (frac * optimizer::correction(&fsite, &class, kind)).clamp(0.0, 1.0)
    };
    let identity = |_: PathKind, frac: f64| frac;
    let decision = if adaptive {
        memo.best(&with_feedback)
    } else {
        memo.best(&identity)
    };
    // The sequential alternative is always registered, so a decision always
    // exists; the `None` arm below routes to the sequential fallback anyway.
    let winner_index = decision.as_ref().map_or(usize::MAX, |d| d.winner_index);
    metrics.planned_rows += decision.as_ref().map_or(n as u64, |d| d.winner.est_rows);

    #[cfg(debug_assertions)]
    if let Some(d) = &decision {
        let plan = optimizer::choice_plan(site.table, &class, d.winner.kind);
        debug_assert!(
            bitempo_query::plan::validate(&plan).is_ok(),
            "optimizer chose a plan shape the validator rejects: {}",
            d.winner.kind
        );
    }

    let rows_before = out.len();
    let visited_before = metrics.rows_visited;
    let path = match choices.into_iter().nth(winner_index) {
        Some(Choice::Key(pk, key_vals)) => {
            for slot in pk.probe_prefix_counted(&key_vals, &mut metrics.index_node_visits) {
                metrics.index_probes += 1;
                if let Some(v) = part.source.version(slot) {
                    if emit(v, out, metrics) {
                        metrics.index_hits += 1;
                    }
                }
            }
            AccessPath::KeyLookup(pk.def.name.clone())
        }
        Some(Choice::BTree(index, range)) => {
            for slot in index.probe_range_counted(
                bound_ref(&range.lo),
                bound_ref(&range.hi),
                &mut metrics.index_node_visits,
            ) {
                metrics.index_probes += 1;
                if let Some(v) = part.source.version(slot) {
                    if emit(v, out, metrics) {
                        metrics.index_hits += 1;
                    }
                }
            }
            AccessPath::IndexScan(index.def.name.clone())
        }
        Some(Choice::Gist(gist, rect)) => {
            for slot in gist.probe_counted(&rect, &mut metrics.index_node_visits) {
                metrics.index_probes += 1;
                if let Some(v) = part.source.version(slot) {
                    if emit(v, out, metrics) {
                        metrics.index_hits += 1;
                    }
                }
            }
            AccessPath::GistScan(gist.name.clone())
        }
        Some(Choice::Tix(tix, sys_probe, app_probe)) => {
            let mut cost = ProbeCost::default();
            match tix.candidates(sys_probe.as_ref(), app_probe.as_ref(), &mut cost) {
                Some(slots) => {
                    metrics.index_node_visits += cost.node_visits;
                    for slot in slots {
                        metrics.index_probes += 1;
                        if let Some(v) = part.source.version(slot) {
                            if emit(v, out, metrics) {
                                metrics.index_hits += 1;
                            }
                        }
                    }
                    AccessPath::TemporalProbe(tix.name().to_string())
                }
                None => run_seq(out, metrics)?,
            }
        }
        Some(Choice::Seq) | None => run_seq(out, metrics)?,
    };

    // Close the loop: record actual-vs-estimated rows so the next plan of
    // this predicate class sees the estimator's observed error.
    if adaptive {
        if let Some(d) = &decision {
            let emitted = (out.len() - rows_before) as u64;
            let visited = metrics.rows_visited - visited_before;
            match d.winner.kind {
                // The scan won. Every index alternative's candidate set is a
                // superset of the emitted rows, so the emitted count is the
                // observed lower bound that pulls an overestimate back down.
                PathKind::SeqScan => {
                    for alt in &d.alternatives {
                        if alt.kind != PathKind::SeqScan {
                            optimizer::observe(&fsite, &class, alt.kind, alt.raw_rows, emitted);
                        }
                    }
                }
                kind => optimizer::observe(&fsite, &class, kind, d.winner.raw_rows, visited),
            }
        }
    }

    Ok(path)
}

fn bound_ref(b: &Bound<Value>) -> Bound<&Value> {
    match b {
        Bound::Included(v) => Bound::Included(v),
        Bound::Excluded(v) => Bound::Excluded(v),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// If `preds` contain equality constraints on *all* key columns of `def`,
/// returns the key values in key order.
pub fn full_key_equality(def: &TableDef, preds: &[ColRange]) -> Option<Vec<Value>> {
    let mut vals = Vec::with_capacity(def.key.len());
    for &k in &def.key {
        let p = preds.iter().find(|p| p.col == k)?;
        match (&p.lo, &p.hi) {
            (Bound::Included(a), Bound::Included(b)) if a == b => vals.push(a.clone()),
            _ => return None,
        }
    }
    Some(vals)
}

/// Merges per-partition access paths into the single path reported for the
/// whole scan: the most specific access wins; pure sequential access reports
/// the partition count.
pub fn merge_access(paths: Vec<AccessPath>) -> AccessPath {
    let mut partitions = 0u8;
    let mut best: Option<AccessPath> = None;
    for p in paths {
        match p {
            AccessPath::FullScan { partitions: n } => partitions += n,
            other => {
                let rank = |a: &AccessPath| match a {
                    AccessPath::KeyLookup(_) => 4,
                    AccessPath::TemporalProbe(_) => 3,
                    AccessPath::IndexScan(_) => 2,
                    AccessPath::GistScan(_) => 1,
                    AccessPath::FullScan { .. } => 0,
                };
                if best.as_ref().is_none_or(|b| rank(&other) > rank(b)) {
                    best = Some(other);
                }
            }
        }
    }
    match best {
        Some(b) if partitions == 0 => b,
        Some(b) => b, // indexed partitions dominate the report
        None => AccessPath::FullScan { partitions },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::IndexKind;
    use crate::index::IndexDef;
    use bitempo_core::{
        AppDate, AppPeriod, Column, DataType, Schema, SysPeriod, TableDef, TemporalClass,
    };

    fn site() -> ScanSite<'static> {
        ScanSite {
            engine: "test",
            table: "t",
            partition: "p",
        }
    }

    fn def() -> TableDef {
        TableDef::new(
            "t",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("val", DataType::Int),
            ]),
            vec![0],
            TemporalClass::Bitemporal,
            Some("vt"),
        )
        .unwrap()
    }

    fn mk_version(id: i64, val: i64, sys_start: u64, sys_end: Option<u64>) -> Version {
        Version {
            row: Row::new(vec![Value::Int(id), Value::Int(val)]),
            app: AppPeriod::new(AppDate(0), AppDate::MAX),
            sys: SysPeriod::new(SysTime(sys_start), sys_end.map_or(SysTime::MAX, SysTime)),
        }
    }

    fn mk_app_version(id: i64, app_start: i64, app_end: i64) -> Version {
        Version {
            row: Row::new(vec![Value::Int(id), Value::Int(id)]),
            app: AppPeriod::new(AppDate(app_start), AppDate(app_end)),
            sys: SysPeriod::new(SysTime(0), SysTime::MAX),
        }
    }

    fn heap_with(n: i64) -> Heap<Version> {
        let mut h = Heap::new();
        for i in 0..n {
            h.insert(mk_version(i, i * 10, i as u64, None));
        }
        h
    }

    #[test]
    fn full_scan_when_no_indexes() {
        let heap = heap_with(50);
        let part = PartitionView {
            source: &heap,
            pk: None,
            indexes: &[],
            gist: None,
            tindex: None,
        };
        let mut out = Vec::new();
        let mut m = ScanMetrics::default();
        let path = scan_partition(
            site(),
            &part,
            &def(),
            &SysSpec::All,
            &AppSpec::All,
            &[],
            SysTime(100),
            false,
            MorselExec::workers(1),
            &mut out,
            &mut m,
        )
        .unwrap();
        assert_eq!(path, AccessPath::FullScan { partitions: 1 });
        assert_eq!(out.len(), 50);
        assert_eq!(m.morsels, 1, "50 rows fit in one morsel");
        assert_eq!(m.rows_visited, 50);
        assert_eq!(m.versions_pruned, 0);
        assert_eq!(m.planned_rows, 50, "a sequential plan expects every row");
    }

    #[test]
    fn key_lookup_via_pk() {
        let heap = heap_with(50);
        let mut pk = OrderedIndex::new(IndexDef {
            name: "pk_t".into(),
            cols: vec![IndexedCol::Value(0)],
            kind: IndexKind::BTree,
        });
        for (slot, v) in heap.iter() {
            pk.insert(v, u64::from(slot.0));
        }
        let part = PartitionView {
            source: &heap,
            pk: Some(&pk),
            indexes: &[],
            gist: None,
            tindex: None,
        };
        let mut out = Vec::new();
        let mut m = ScanMetrics::default();
        let path = scan_partition(
            site(),
            &part,
            &def(),
            &SysSpec::Current,
            &AppSpec::All,
            &[ColRange::eq(0, Value::Int(7))],
            SysTime(100),
            false,
            MorselExec::workers(1),
            &mut out,
            &mut m,
        )
        .unwrap();
        assert_eq!(path, AccessPath::KeyLookup("pk_t".into()));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(1), &Value::Int(70));
        assert_eq!(m.index_probes, 1);
        assert_eq!(m.morsels, 0, "index paths dispatch no morsels");
    }

    #[test]
    fn selective_time_index_chosen_nonselective_scanned() {
        let heap = heap_with(1000);
        let mut ix = OrderedIndex::new(IndexDef {
            name: "ix_sys_start".into(),
            cols: vec![IndexedCol::SysStart],
            kind: IndexKind::BTree,
        });
        for (slot, v) in heap.iter() {
            ix.insert(v, u64::from(slot.0));
        }
        let indexes = vec![ix];
        let part = PartitionView {
            source: &heap,
            pk: None,
            indexes: &indexes,
            gist: None,
            tindex: None,
        };
        // Selective: sys_start <= 5 of 0..1000 → ~0.5 %.
        let mut out = Vec::new();
        let mut m = ScanMetrics::default();
        let path = scan_partition(
            site(),
            &part,
            &def(),
            &SysSpec::AsOf(SysTime(5)),
            &AppSpec::All,
            &[],
            SysTime(2000),
            false,
            MorselExec::workers(1),
            &mut out,
            &mut m,
        )
        .unwrap();
        assert_eq!(path, AccessPath::IndexScan("ix_sys_start".into()));
        assert_eq!(out.len(), 6, "versions 0..=5 visible at t5");
        assert_eq!(m.index_probes, 6);

        // Non-selective: AS OF t900 → 90 % → sequential scan.
        let mut out = Vec::new();
        let mut m = ScanMetrics::default();
        let path = scan_partition(
            site(),
            &part,
            &def(),
            &SysSpec::AsOf(SysTime(900)),
            &AppSpec::All,
            &[],
            SysTime(2000),
            false,
            MorselExec::workers(1),
            &mut out,
            &mut m,
        )
        .unwrap();
        assert_eq!(path, AccessPath::FullScan { partitions: 1 });
        assert_eq!(out.len(), 901);
        assert_eq!(m.rows_visited, 1000);
        assert_eq!(m.versions_pruned, 99);
    }

    #[test]
    fn gist_chosen_when_selective_declined_when_not() {
        // Bounded system periods [i, i+10) give the R-Tree tight rectangles,
        // so its fraction estimate tracks real selectivity.
        let mut heap = Heap::new();
        for i in 0..500i64 {
            heap.insert(mk_version(i, i, i as u64, Some(i as u64 + 10)));
        }
        let mut gist = GistIndex::new("gist_t");
        for (slot, v) in heap.iter() {
            gist.insert(v, u64::from(slot.0));
        }
        let part = PartitionView {
            source: &heap,
            pk: None,
            indexes: &[],
            gist: Some(&gist),
            tindex: None,
        };
        let bare = PartitionView {
            source: &heap,
            pk: None,
            indexes: &[],
            gist: None,
            tindex: None,
        };
        let run = |part: &PartitionView, sys: &SysSpec| {
            let mut out = Vec::new();
            let mut m = ScanMetrics::default();
            let path = scan_partition(
                site(),
                part,
                &def(),
                sys,
                &AppSpec::All,
                &[],
                SysTime(1000),
                false,
                MorselExec::workers(1),
                &mut out,
                &mut m,
            )
            .unwrap();
            (path, out, m)
        };
        // Selective: AS OF t10 → sys [i, i+10) contains 10 only for i 1..=10.
        let selective = SysSpec::AsOf(SysTime(10));
        let (path, out, _) = run(&part, &selective);
        assert_eq!(path, AccessPath::GistScan("gist_t".into()));
        assert_eq!(out.len(), 10, "versions 1..=10 visible at t10");
        let (bare_path, bare_out, _) = run(&bare, &selective);
        assert_eq!(bare_path, AccessPath::FullScan { partitions: 1 });
        assert_eq!(out, bare_out, "GiST output identical to full scan");
        // Non-selective: a range covering every version → sequential scan.
        let wide = SysSpec::Range(SysPeriod::new(SysTime(0), SysTime(600)));
        let (path, out, _) = run(&part, &wide);
        assert_eq!(path, AccessPath::FullScan { partitions: 1 });
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn parallel_scan_identical_to_sequential() {
        // Big enough for several morsels, with tombstones to make slot
        // positions and live count disagree.
        let mut heap = heap_with(5000);
        for slot in [3u32, 999, 2048, 4096] {
            heap.remove(bitempo_storage::SlotId(slot));
        }
        let part = PartitionView {
            source: &heap,
            pk: None,
            indexes: &[],
            gist: None,
            tindex: None,
        };
        let scan = |workers: usize| {
            let mut out = Vec::new();
            let mut m = ScanMetrics::default();
            let path = scan_partition(
                site(),
                &part,
                &def(),
                &SysSpec::AsOf(SysTime(2500)),
                &AppSpec::All,
                &[],
                SysTime(9000),
                false,
                MorselExec::workers(workers),
                &mut out,
                &mut m,
            )
            .unwrap();
            assert_eq!(path, AccessPath::FullScan { partitions: 1 });
            (out, m)
        };
        let (seq_rows, seq_m) = scan(1);
        assert_eq!(seq_m.morsels, 5, "5000 slots => 5 morsels");
        assert_eq!(seq_m.rows_visited, 4996, "tombstones are skipped");
        for workers in [2, 4, 8] {
            let (par_rows, par_m) = scan(workers);
            assert_eq!(par_rows, seq_rows, "workers={workers}");
            assert_eq!(par_m, seq_m, "workers={workers}");
        }
    }

    #[test]
    fn reconstructed_source_binary_search() {
        let recon = Reconstructed(vec![
            (2, mk_version(2, 20, 0, None)),
            (5, mk_version(5, 50, 0, None)),
            (9, mk_version(9, 90, 0, None)),
        ]);
        assert!(recon.version(5).is_some());
        assert!(recon.version(3).is_none());
        assert_eq!(recon.len(), 3);
        let mut n = 0;
        recon.for_each(&mut |_, _| n += 1);
        assert_eq!(n, 3);
    }

    #[test]
    fn full_key_equality_detection() {
        let d = def();
        assert_eq!(
            full_key_equality(&d, &[ColRange::eq(0, Value::Int(3))]),
            Some(vec![Value::Int(3)])
        );
        assert_eq!(
            full_key_equality(&d, &[ColRange::eq(1, Value::Int(3))]),
            None
        );
        let range_pred = ColRange::between(
            0,
            Bound::Included(Value::Int(1)),
            Bound::Included(Value::Int(5)),
        );
        assert_eq!(full_key_equality(&d, &[range_pred]), None);
    }

    fn tindex_over(heap: &Heap<Version>) -> TemporalIndex {
        let mut tix = TemporalIndex::new("tix_t", 64);
        for (slot, v) in heap.iter() {
            tix.insert(u64::from(slot.0), v.app, v.sys);
        }
        tix.prepare();
        tix
    }

    #[test]
    fn temporal_probe_chosen_when_selective_and_matches_full_scan() {
        let heap = heap_with(1000);
        let tix = tindex_over(&heap);
        let part = PartitionView {
            source: &heap,
            pk: None,
            indexes: &[],
            gist: None,
            tindex: Some(&tix),
        };
        let bare = PartitionView {
            source: &heap,
            pk: None,
            indexes: &[],
            gist: None,
            tindex: None,
        };
        // Selective: visible at t5 → 6 of 1000 versions.
        let run = |part: &PartitionView| {
            let mut out = Vec::new();
            let mut m = ScanMetrics::default();
            let path = scan_partition(
                site(),
                part,
                &def(),
                &SysSpec::AsOf(SysTime(5)),
                &AppSpec::All,
                &[],
                SysTime(2000),
                false,
                MorselExec::workers(1),
                &mut out,
                &mut m,
            )
            .unwrap();
            (path, out, m)
        };
        let (path, out, m) = run(&part);
        assert_eq!(path, AccessPath::TemporalProbe("tix_t".into()));
        assert_eq!(out.len(), 6, "versions 0..=5 visible at t5");
        assert_eq!(m.index_probes, 6);
        assert_eq!(m.index_hits, 6, "the superset was exact here");
        assert!(m.index_node_visits > 0, "probe work is accounted");
        assert_eq!(m.morsels, 0, "no morsels on the probe path");
        assert!(m.planned_rows > 0, "the chosen probe carried an estimate");
        let (bare_path, bare_out, _) = run(&bare);
        assert_eq!(bare_path, AccessPath::FullScan { partitions: 1 });
        assert_eq!(out, bare_out, "probe output identical to full scan");
    }

    #[test]
    fn temporal_probe_declined_when_not_selective() {
        let heap = heap_with(1000);
        let tix = tindex_over(&heap);
        let part = PartitionView {
            source: &heap,
            pk: None,
            indexes: &[],
            gist: None,
            tindex: Some(&tix),
        };
        let mut out = Vec::new();
        let mut m = ScanMetrics::default();
        // AS OF t900 → ~90 % of versions qualify: scan wins.
        let path = scan_partition(
            site(),
            &part,
            &def(),
            &SysSpec::AsOf(SysTime(900)),
            &AppSpec::All,
            &[],
            SysTime(2000),
            false,
            MorselExec::workers(1),
            &mut out,
            &mut m,
        )
        .unwrap();
        assert_eq!(path, AccessPath::FullScan { partitions: 1 });
        assert_eq!(out.len(), 901);
    }

    #[test]
    fn empty_partition_short_circuits_before_estimating() {
        // Regression: the old planner fed `len().max(1)` to the temporal
        // estimator, so an empty partition estimated fraction 0 and always
        // "won" the probe. Empty partitions must take the trivial scan.
        let heap: Heap<Version> = Heap::new();
        let mut tix = TemporalIndex::new("tix_t", 64);
        tix.prepare();
        let part = PartitionView {
            source: &heap,
            pk: None,
            indexes: &[],
            gist: None,
            tindex: Some(&tix),
        };
        let mut out = Vec::new();
        let mut m = ScanMetrics::default();
        let path = scan_partition(
            site(),
            &part,
            &def(),
            &SysSpec::AsOf(SysTime(5)),
            &AppSpec::All,
            &[],
            SysTime(100),
            false,
            MorselExec::workers(4),
            &mut out,
            &mut m,
        )
        .unwrap();
        assert_eq!(path, AccessPath::FullScan { partitions: 1 });
        assert!(out.is_empty());
        assert_eq!(m.index_probes, 0, "no probe against an empty partition");
        assert_eq!(m.planned_rows, 0);
    }

    #[test]
    fn adaptive_replan_switches_path_on_repeat() {
        optimizer::reset_feedback();
        // App periods alternate [0,5) and [10,20): a stab at day 7 matches
        // nothing, but the interval estimate sees half the partition on each
        // side, so the first plan declines the probe.
        let mut heap = Heap::new();
        for i in 0..400i64 {
            if i % 2 == 0 {
                heap.insert(mk_app_version(i, 0, 5));
            } else {
                heap.insert(mk_app_version(i, 10, 20));
            }
        }
        let tix = tindex_over(&heap);
        let part = PartitionView {
            source: &heap,
            pk: None,
            indexes: &[],
            gist: None,
            tindex: Some(&tix),
        };
        let run = || {
            let mut out = Vec::new();
            let mut m = ScanMetrics::default();
            let path = scan_partition(
                site(),
                &part,
                &def(),
                &SysSpec::All,
                &AppSpec::AsOf(AppDate(7)),
                &[],
                SysTime(100),
                true,
                MorselExec::workers(1),
                &mut out,
                &mut m,
            )
            .unwrap();
            (path, out, m)
        };
        let (first, out1, m1) = run();
        assert_eq!(first, AccessPath::FullScan { partitions: 1 });
        assert!(out1.is_empty(), "nothing is valid on day 7");
        assert!(
            m1.planned_rows > 100,
            "the raw estimate saw a large candidate set: {}",
            m1.planned_rows
        );
        let (second, out2, m2) = run();
        assert_eq!(
            second,
            AccessPath::TemporalProbe("tix_t".into()),
            "the corrected estimate re-plans onto the probe"
        );
        assert!(out2.is_empty());
        assert!(
            m2.planned_rows < m1.planned_rows,
            "feedback shrank the estimate"
        );
        optimizer::reset_feedback();
    }

    #[test]
    fn merge_access_prefers_specific() {
        let merged = merge_access(vec![
            AccessPath::FullScan { partitions: 1 },
            AccessPath::IndexScan("ix".into()),
        ]);
        assert_eq!(merged, AccessPath::IndexScan("ix".into()));
        let merged = merge_access(vec![
            AccessPath::FullScan { partitions: 1 },
            AccessPath::FullScan { partitions: 2 },
        ]);
        assert_eq!(merged, AccessPath::FullScan { partitions: 3 });
    }

    #[test]
    fn gist_rect_construction() {
        let r =
            gist_query_rect(&SysSpec::Current, &AppSpec::AsOf(AppDate(10)), SysTime(42)).unwrap();
        assert_eq!((r.x_min, r.x_max), (10, 10));
        assert_eq!((r.y_min, r.y_max), (42, 42));
        assert!(gist_query_rect(&SysSpec::All, &AppSpec::All, SysTime(0)).is_none());
    }

    #[test]
    fn gist_scan_with_empty_app_range_probes_nothing() {
        let heap = heap_with(100);
        let mut gist = GistIndex::new("gist_t");
        for (slot, v) in heap.iter() {
            gist.insert(v, u64::from(slot.0));
        }
        let part = PartitionView {
            source: &heap,
            pk: None,
            indexes: &[],
            gist: Some(&gist),
            tindex: None,
        };
        // Empty application window [5, 5): no version can qualify, the query
        // rect is inverted, and the estimated fraction is 0 — the GiST wins
        // on startup cost alone and must return no slots instead of
        // spuriously matching versions that straddle day 5.
        let empty = AppPeriod::new(AppDate(5), AppDate(5));
        let rect = gist_query_rect(&SysSpec::All, &AppSpec::Range(empty), SysTime(200)).unwrap();
        assert!(rect.is_empty());
        let mut out = Vec::new();
        let mut m = ScanMetrics::default();
        let path = scan_partition(
            site(),
            &part,
            &def(),
            &SysSpec::All,
            &AppSpec::Range(empty),
            &[],
            SysTime(200),
            false,
            MorselExec::workers(1),
            &mut out,
            &mut m,
        )
        .unwrap();
        assert_eq!(path, AccessPath::GistScan("gist_t".into()));
        assert!(out.is_empty());
        assert_eq!(m.index_probes, 0, "no false-positive probes");
    }
}
