//! Partition scanning with index selection — the per-engine "optimizer".
//!
//! Every row-store engine answers a scan per physical partition by choosing
//! among: primary-key lookup, B-Tree index scan, GiST scan, or a full scan.
//! The choice uses the crude uniform-interpolation selectivity estimate from
//! [`crate::index`], with a fixed threshold. This mirrors the behaviour the
//! paper measured: indexes only pay off for very selective predicates, and
//! optimizers flip to table scans otherwise (§5.3.2, §5.4.1, §5.9).

use crate::api::{AccessPath, AppSpec, ColRange, SysSpec};
use crate::index::{GistIndex, IndexedCol, OrderedIndex};
use crate::morsel::{run_morsels, MorselExec, ScanMetrics};
use crate::version::Version;
use bitempo_core::{obs, Result, Row, SysTime, TableDef, Value};
use bitempo_storage::{Heap, Rect};
use bitempo_tindex::{AppProbe, ProbeCost, SysProbe, TemporalIndex};
use std::ops::{Bound, Range};

/// Identifies where a partition scan runs, for access-path traces: which
/// engine, table, and physical partition. Plain borrowed labels — building
/// one costs nothing, so engines pass it unconditionally.
#[derive(Debug, Clone, Copy)]
pub struct ScanSite<'a> {
    /// Engine display name ("System A" .. "System D").
    pub engine: &'a str,
    /// Table name.
    pub table: &'a str,
    /// Physical partition label ("current", "history", "staging", "all").
    pub partition: &'a str,
}

impl ScanSite<'_> {
    /// Records one [`obs::ScanTrace`] for this site from counter deltas.
    /// No-op (and no allocation) while tracing is disabled.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        access: &AccessPath,
        delta: ScanMetrics,
        rows_emitted: u64,
        workers: usize,
        start_nanos: u64,
        dur_nanos: u64,
    ) {
        obs::record_scan(|| obs::ScanTrace {
            engine: self.engine.to_string(),
            table: self.table.to_string(),
            partition: self.partition.to_string(),
            access: access.to_string(),
            rows_visited: delta.rows_visited,
            rows_emitted,
            versions_pruned: delta.versions_pruned,
            index_probes: delta.index_probes,
            index_hits: delta.index_hits,
            index_node_visits: delta.index_node_visits,
            morsels: delta.morsels,
            workers: workers as u64,
            start_nanos,
            dur_nanos,
        });
    }
}

/// Index scans must be estimated below this fraction of the partition to be
/// chosen over a sequential scan.
pub const INDEX_SELECTIVITY_THRESHOLD: f64 = 0.15;

/// A slot-addressable collection of versions (one physical partition).
///
/// `Sync` is a supertrait so sequential scans over a partition can be split
/// into morsels and executed by scoped worker threads (see
/// [`crate::morsel`]); every implementation is plain owned data.
pub trait VersionSource: Sync {
    /// The version stored at `slot`, if live.
    fn version(&self, slot: u64) -> Option<&Version>;
    /// Upper bound (exclusive) on scan positions: the range `0..scan_units()`
    /// covers every live version, and disjoint sub-ranges visit disjoint
    /// versions. For heaps this counts tombstoned slots too.
    fn scan_units(&self) -> usize;
    /// All live `(slot, version)` pairs whose scan position is in `range`,
    /// in position order.
    fn for_each_in(&self, range: Range<usize>, f: &mut dyn FnMut(u64, &Version));
    /// All live `(slot, version)` pairs, in position order.
    fn for_each(&self, f: &mut dyn FnMut(u64, &Version)) {
        self.for_each_in(0..self.scan_units(), f);
    }
    /// Number of live versions.
    fn len(&self) -> usize;
    /// True when the partition holds no live versions.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl VersionSource for Heap<Version> {
    fn version(&self, slot: u64) -> Option<&Version> {
        self.get(bitempo_storage::SlotId(slot as u32))
    }
    fn scan_units(&self) -> usize {
        self.allocated()
    }
    fn for_each_in(&self, range: Range<usize>, f: &mut dyn FnMut(u64, &Version)) {
        for (slot, v) in self.iter_range(range) {
            f(u64::from(slot.0), v);
        }
    }
    fn len(&self) -> usize {
        Heap::len(self)
    }
}

/// A materialized partition (System B's reconstructed current partition),
/// sorted by slot for binary-search resolution of index probes.
pub struct Reconstructed(pub Vec<(u64, Version)>);

impl VersionSource for Reconstructed {
    fn version(&self, slot: u64) -> Option<&Version> {
        self.0
            .binary_search_by_key(&slot, |(s, _)| *s)
            .ok()
            .and_then(|i| self.0.get(i))
            .map(|(_, v)| v)
    }
    fn scan_units(&self) -> usize {
        self.0.len()
    }
    fn for_each_in(&self, range: Range<usize>, f: &mut dyn FnMut(u64, &Version)) {
        let end = range.end.min(self.0.len());
        for (slot, v) in self.0.get(range.start.min(end)..end).unwrap_or(&[]) {
            f(*slot, v);
        }
    }
    fn len(&self) -> usize {
        self.0.len()
    }
}

/// One partition's access structures, borrowed for the duration of a scan.
pub struct PartitionView<'a> {
    /// The versions.
    pub source: &'a dyn VersionSource,
    /// Primary-key index (leading columns = key columns), if any.
    pub pk: Option<&'a OrderedIndex>,
    /// Secondary ordered indexes.
    pub indexes: &'a [OrderedIndex],
    /// GiST index, if any (System D).
    pub gist: Option<&'a GistIndex>,
    /// Temporal index (Timeline + interval index), if attached.
    pub tindex: Option<&'a TemporalIndex>,
}

/// The [`SysProbe`] a system-time spec implies, or `None` when the spec
/// does not constrain system time.
pub fn sys_probe_for(sys: &SysSpec) -> Option<SysProbe> {
    match sys {
        SysSpec::Current => Some(SysProbe::CurrentOnly),
        SysSpec::AsOf(t) => Some(SysProbe::At(*t)),
        SysSpec::Range(p) => Some(SysProbe::During(*p)),
        SysSpec::All => None,
    }
}

/// The [`AppProbe`] an application-time spec implies, or `None` when the
/// spec does not constrain application time.
pub fn app_probe_for(app: &AppSpec) -> Option<AppProbe> {
    match app {
        AppSpec::AsOf(d) => Some(AppProbe::At(*d)),
        AppSpec::Range(p) => Some(AppProbe::During(*p)),
        AppSpec::All => None,
    }
}

/// The range on an index's leading column implied by the temporal specs or
/// pushed predicates, with an owned-bounds representation.
struct ProbeRange {
    lo: Bound<Value>,
    hi: Bound<Value>,
}

fn probe_range_for(
    index: &OrderedIndex,
    sys: &SysSpec,
    app: &AppSpec,
    preds: &[ColRange],
) -> Option<ProbeRange> {
    match index.def.cols.first()? {
        IndexedCol::Value(c) => {
            let p = preds.iter().find(|p| p.col == *c)?;
            Some(ProbeRange {
                lo: p.lo.clone(),
                hi: p.hi.clone(),
            })
        }
        IndexedCol::AppStart => match app {
            // app_start <= point < app_end: the index bounds only the start.
            AppSpec::AsOf(d) => Some(ProbeRange {
                lo: Bound::Unbounded,
                hi: Bound::Included(Value::Date(*d)),
            }),
            AppSpec::Range(p) => Some(ProbeRange {
                lo: Bound::Unbounded,
                hi: Bound::Excluded(Value::Date(p.end)),
            }),
            AppSpec::All => None,
        },
        IndexedCol::SysStart => match sys {
            SysSpec::AsOf(t) => Some(ProbeRange {
                lo: Bound::Unbounded,
                hi: Bound::Included(Value::SysTime(*t)),
            }),
            SysSpec::Range(p) => Some(ProbeRange {
                lo: Bound::Unbounded,
                hi: Bound::Excluded(Value::SysTime(p.end)),
            }),
            SysSpec::Current | SysSpec::All => None,
        },
        IndexedCol::SysEnd => match sys {
            // sys_end > point (or > range.start).
            SysSpec::AsOf(t) => Some(ProbeRange {
                lo: Bound::Excluded(Value::SysTime(*t)),
                hi: Bound::Unbounded,
            }),
            SysSpec::Range(p) => Some(ProbeRange {
                lo: Bound::Excluded(Value::SysTime(p.start)),
                hi: Bound::Unbounded,
            }),
            SysSpec::Current | SysSpec::All => None,
        },
    }
}

/// The GiST query rectangle implied by the temporal specs, or `None` when
/// neither dimension constrains the scan (a GiST probe would be a full walk).
pub fn gist_query_rect(sys: &SysSpec, app: &AppSpec, now: SysTime) -> Option<Rect> {
    let (x_min, x_max) = match app {
        AppSpec::AsOf(d) => (d.0, d.0),
        AppSpec::Range(p) => (p.start.0, p.end.0.saturating_sub(1)),
        AppSpec::All => (i64::MIN + 1, i64::MAX - 1),
    };
    let sys_pt = |t: SysTime| t.0.min((i64::MAX - 1) as u64) as i64;
    let (y_min, y_max) = match sys {
        SysSpec::Current => (sys_pt(now), sys_pt(now)),
        SysSpec::AsOf(t) => (sys_pt(*t), sys_pt(*t)),
        SysSpec::Range(p) => (sys_pt(p.start), sys_pt(p.end).saturating_sub(1)),
        SysSpec::All => (0, i64::MAX - 1),
    };
    if matches!(app, AppSpec::All) && matches!(sys, SysSpec::All) {
        return None;
    }
    Some(Rect::new(x_min, x_max, y_min, y_max))
}

/// Scans one partition: picks an access path, applies residual filters, and
/// appends qualifying output rows (in `def.scan_schema()` layout) to `out`.
/// Counters accumulate into `metrics`. Sequential scans are morsel-parallel
/// per `exec` (`workers <= 1` runs inline); the index paths stay serial, as
/// their probe result sets are already small by construction. Returns the
/// access path taken, or [`bitempo_core::Error::WorkerPanicked`] if a scan
/// worker panicked (the panic is contained; partial output is discarded).
///
/// When tracing is enabled ([`obs::is_enabled`]) one [`obs::ScanTrace`] is
/// recorded for `site`; the disabled path is a single flag check.
#[allow(clippy::too_many_arguments)]
pub fn scan_partition(
    site: ScanSite<'_>,
    part: &PartitionView<'_>,
    def: &TableDef,
    sys: &SysSpec,
    app: &AppSpec,
    preds: &[ColRange],
    now: SysTime,
    prefer_gist: bool,
    exec: MorselExec,
    out: &mut Vec<Row>,
    metrics: &mut ScanMetrics,
) -> Result<AccessPath> {
    let Some(start) = obs::trace_clock() else {
        return scan_partition_inner(
            part,
            def,
            sys,
            app,
            preds,
            now,
            prefer_gist,
            exec,
            out,
            metrics,
        );
    };
    let rows_before = out.len();
    let before = *metrics;
    let result = scan_partition_inner(
        part,
        def,
        sys,
        app,
        preds,
        now,
        prefer_gist,
        exec,
        out,
        metrics,
    );
    let end = obs::trace_clock().unwrap_or(start);
    if let Ok(path) = &result {
        let delta = ScanMetrics {
            morsels: metrics.morsels - before.morsels,
            rows_visited: metrics.rows_visited - before.rows_visited,
            versions_pruned: metrics.versions_pruned - before.versions_pruned,
            index_probes: metrics.index_probes - before.index_probes,
            index_hits: metrics.index_hits - before.index_hits,
            index_node_visits: metrics.index_node_visits - before.index_node_visits,
        };
        site.record(
            path,
            delta,
            (out.len() - rows_before) as u64,
            exec.workers.max(1),
            start,
            end.saturating_sub(start),
        );
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn scan_partition_inner(
    part: &PartitionView<'_>,
    def: &TableDef,
    sys: &SysSpec,
    app: &AppSpec,
    preds: &[ColRange],
    now: SysTime,
    prefer_gist: bool,
    exec: MorselExec,
    out: &mut Vec<Row>,
    metrics: &mut ScanMetrics,
) -> Result<AccessPath> {
    let emit = |v: &Version, out: &mut Vec<Row>, m: &mut ScanMetrics| -> bool {
        m.rows_visited += 1;
        if v.matches(sys, app) && v.matches_preds(preds) {
            out.push(v.output_row(def));
            true
        } else {
            m.versions_pruned += 1;
            false
        }
    };

    // 1. Primary-key lookup if the predicates pin every key column.
    if let Some(pk) = part.pk {
        if let Some(key_vals) = full_key_equality(def, preds) {
            for slot in pk.probe_prefix_counted(&key_vals, &mut metrics.index_node_visits) {
                metrics.index_probes += 1;
                if let Some(v) = part.source.version(slot) {
                    if emit(v, out, metrics) {
                        metrics.index_hits += 1;
                    }
                }
            }
            return Ok(AccessPath::KeyLookup(pk.def.name.clone()));
        }
    }

    // 2. GiST, when configured and the query has a temporal window.
    if prefer_gist {
        if let (Some(gist), Some(rect)) = (part.gist, gist_query_rect(sys, app, now)) {
            for slot in gist.probe_counted(&rect, &mut metrics.index_node_visits) {
                metrics.index_probes += 1;
                if let Some(v) = part.source.version(slot) {
                    if emit(v, out, metrics) {
                        metrics.index_hits += 1;
                    }
                }
            }
            return Ok(AccessPath::GistScan(gist.name.clone()));
        }
    }

    // 3. Cheapest sufficiently-selective B-Tree index, estimated but not
    //    yet committed — the temporal index gets to underbid it below.
    let mut best: Option<(f64, &OrderedIndex, ProbeRange)> = None;
    for index in part.indexes.iter().chain(part.pk) {
        if let Some(range) = probe_range_for(index, sys, app, preds) {
            let lo_ref = bound_ref(&range.lo);
            let hi_ref = bound_ref(&range.hi);
            let sel = match index.estimate_selectivity(lo_ref, hi_ref) {
                Some(s) => s,
                // Non-estimable (string column): only trust equality probes.
                None => match (&range.lo, &range.hi) {
                    (Bound::Included(a), Bound::Included(b)) if a == b => 0.01,
                    _ => continue,
                },
            };
            if sel < INDEX_SELECTIVITY_THRESHOLD && best.as_ref().is_none_or(|(b, _, _)| sel < *b) {
                best = Some((sel, index, range));
            }
        }
    }

    // 3b. Temporal index: applicable whenever either temporal dimension is
    //     constrained. Chosen over the B-Tree when its estimated candidate
    //     fraction is sufficiently selective *and* no cheaper B-Tree range
    //     exists; candidates are a superset, re-checked by `emit`, and
    //     arrive sorted by slot so output order matches a sequential scan.
    if let Some(tix) = part.tindex {
        let sys_probe = sys_probe_for(sys);
        let app_probe = app_probe_for(app);
        if sys_probe.is_some() || app_probe.is_some() {
            let frac = tix.estimate_fraction(
                sys_probe.as_ref(),
                app_probe.as_ref(),
                part.source.len().max(1),
            );
            let underbids_btree = best.as_ref().is_none_or(|(sel, _, _)| frac <= *sel);
            if frac < INDEX_SELECTIVITY_THRESHOLD && underbids_btree {
                let mut cost = ProbeCost::default();
                if let Some(slots) =
                    tix.candidates(sys_probe.as_ref(), app_probe.as_ref(), &mut cost)
                {
                    metrics.index_node_visits += cost.node_visits;
                    for slot in slots {
                        metrics.index_probes += 1;
                        if let Some(v) = part.source.version(slot) {
                            if emit(v, out, metrics) {
                                metrics.index_hits += 1;
                            }
                        }
                    }
                    return Ok(AccessPath::TemporalProbe(tix.name().to_string()));
                }
            }
        }
    }

    if let Some((_, index, range)) = best {
        for slot in index.probe_range_counted(
            bound_ref(&range.lo),
            bound_ref(&range.hi),
            &mut metrics.index_node_visits,
        ) {
            metrics.index_probes += 1;
            if let Some(v) = part.source.version(slot) {
                if emit(v, out, metrics) {
                    metrics.index_hits += 1;
                }
            }
        }
        return Ok(AccessPath::IndexScan(index.def.name.clone()));
    }

    // 4. Sequential scan, split into morsels. Merging in morsel order keeps
    //    the output identical to a single-threaded scan for any worker count.
    let (rows, scan_metrics) = run_morsels(part.source.scan_units(), exec, |range, buf, m| {
        part.source.for_each_in(range, &mut |_, v| {
            emit(v, buf, m);
        });
    })?;
    metrics.merge(&scan_metrics);
    out.extend(rows);
    Ok(AccessPath::FullScan { partitions: 1 })
}

fn bound_ref(b: &Bound<Value>) -> Bound<&Value> {
    match b {
        Bound::Included(v) => Bound::Included(v),
        Bound::Excluded(v) => Bound::Excluded(v),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// If `preds` contain equality constraints on *all* key columns of `def`,
/// returns the key values in key order.
pub fn full_key_equality(def: &TableDef, preds: &[ColRange]) -> Option<Vec<Value>> {
    let mut vals = Vec::with_capacity(def.key.len());
    for &k in &def.key {
        let p = preds.iter().find(|p| p.col == k)?;
        match (&p.lo, &p.hi) {
            (Bound::Included(a), Bound::Included(b)) if a == b => vals.push(a.clone()),
            _ => return None,
        }
    }
    Some(vals)
}

/// Merges per-partition access paths into the single path reported for the
/// whole scan: the most specific access wins; pure sequential access reports
/// the partition count.
pub fn merge_access(paths: Vec<AccessPath>) -> AccessPath {
    let mut partitions = 0u8;
    let mut best: Option<AccessPath> = None;
    for p in paths {
        match p {
            AccessPath::FullScan { partitions: n } => partitions += n,
            other => {
                let rank = |a: &AccessPath| match a {
                    AccessPath::KeyLookup(_) => 4,
                    AccessPath::TemporalProbe(_) => 3,
                    AccessPath::IndexScan(_) => 2,
                    AccessPath::GistScan(_) => 1,
                    AccessPath::FullScan { .. } => 0,
                };
                if best.as_ref().is_none_or(|b| rank(&other) > rank(b)) {
                    best = Some(other);
                }
            }
        }
    }
    match best {
        Some(b) if partitions == 0 => b,
        Some(b) => b, // indexed partitions dominate the report
        None => AccessPath::FullScan { partitions },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::IndexKind;
    use crate::index::IndexDef;
    use bitempo_core::{
        AppDate, AppPeriod, Column, DataType, Schema, SysPeriod, TableDef, TemporalClass,
    };

    fn site() -> ScanSite<'static> {
        ScanSite {
            engine: "test",
            table: "t",
            partition: "p",
        }
    }

    fn def() -> TableDef {
        TableDef::new(
            "t",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("val", DataType::Int),
            ]),
            vec![0],
            TemporalClass::Bitemporal,
            Some("vt"),
        )
        .unwrap()
    }

    fn mk_version(id: i64, val: i64, sys_start: u64, sys_end: Option<u64>) -> Version {
        Version {
            row: Row::new(vec![Value::Int(id), Value::Int(val)]),
            app: AppPeriod::new(AppDate(0), AppDate::MAX),
            sys: SysPeriod::new(SysTime(sys_start), sys_end.map_or(SysTime::MAX, SysTime)),
        }
    }

    fn heap_with(n: i64) -> Heap<Version> {
        let mut h = Heap::new();
        for i in 0..n {
            h.insert(mk_version(i, i * 10, i as u64, None));
        }
        h
    }

    #[test]
    fn full_scan_when_no_indexes() {
        let heap = heap_with(50);
        let part = PartitionView {
            source: &heap,
            pk: None,
            indexes: &[],
            gist: None,
            tindex: None,
        };
        let mut out = Vec::new();
        let mut m = ScanMetrics::default();
        let path = scan_partition(
            site(),
            &part,
            &def(),
            &SysSpec::All,
            &AppSpec::All,
            &[],
            SysTime(100),
            false,
            MorselExec::workers(1),
            &mut out,
            &mut m,
        )
        .unwrap();
        assert_eq!(path, AccessPath::FullScan { partitions: 1 });
        assert_eq!(out.len(), 50);
        assert_eq!(m.morsels, 1, "50 rows fit in one morsel");
        assert_eq!(m.rows_visited, 50);
        assert_eq!(m.versions_pruned, 0);
    }

    #[test]
    fn key_lookup_via_pk() {
        let heap = heap_with(50);
        let mut pk = OrderedIndex::new(IndexDef {
            name: "pk_t".into(),
            cols: vec![IndexedCol::Value(0)],
            kind: IndexKind::BTree,
        });
        for (slot, v) in heap.iter() {
            pk.insert(v, u64::from(slot.0));
        }
        let part = PartitionView {
            source: &heap,
            pk: Some(&pk),
            indexes: &[],
            gist: None,
            tindex: None,
        };
        let mut out = Vec::new();
        let mut m = ScanMetrics::default();
        let path = scan_partition(
            site(),
            &part,
            &def(),
            &SysSpec::Current,
            &AppSpec::All,
            &[ColRange::eq(0, Value::Int(7))],
            SysTime(100),
            false,
            MorselExec::workers(1),
            &mut out,
            &mut m,
        )
        .unwrap();
        assert_eq!(path, AccessPath::KeyLookup("pk_t".into()));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(1), &Value::Int(70));
        assert_eq!(m.index_probes, 1);
        assert_eq!(m.morsels, 0, "index paths dispatch no morsels");
    }

    #[test]
    fn selective_time_index_chosen_nonselective_scanned() {
        let heap = heap_with(1000);
        let mut ix = OrderedIndex::new(IndexDef {
            name: "ix_sys_start".into(),
            cols: vec![IndexedCol::SysStart],
            kind: IndexKind::BTree,
        });
        for (slot, v) in heap.iter() {
            ix.insert(v, u64::from(slot.0));
        }
        let indexes = vec![ix];
        let part = PartitionView {
            source: &heap,
            pk: None,
            indexes: &indexes,
            gist: None,
            tindex: None,
        };
        // Selective: sys_start <= 5 of 0..1000 → ~0.5 %.
        let mut out = Vec::new();
        let mut m = ScanMetrics::default();
        let path = scan_partition(
            site(),
            &part,
            &def(),
            &SysSpec::AsOf(SysTime(5)),
            &AppSpec::All,
            &[],
            SysTime(2000),
            false,
            MorselExec::workers(1),
            &mut out,
            &mut m,
        )
        .unwrap();
        assert_eq!(path, AccessPath::IndexScan("ix_sys_start".into()));
        assert_eq!(out.len(), 6, "versions 0..=5 visible at t5");
        assert_eq!(m.index_probes, 6);

        // Non-selective: AS OF t900 → 90 % → sequential scan.
        let mut out = Vec::new();
        let mut m = ScanMetrics::default();
        let path = scan_partition(
            site(),
            &part,
            &def(),
            &SysSpec::AsOf(SysTime(900)),
            &AppSpec::All,
            &[],
            SysTime(2000),
            false,
            MorselExec::workers(1),
            &mut out,
            &mut m,
        )
        .unwrap();
        assert_eq!(path, AccessPath::FullScan { partitions: 1 });
        assert_eq!(out.len(), 901);
        assert_eq!(m.rows_visited, 1000);
        assert_eq!(m.versions_pruned, 99);
    }

    #[test]
    fn gist_preferred_when_configured() {
        let heap = heap_with(100);
        let mut gist = GistIndex::new("gist_t");
        for (slot, v) in heap.iter() {
            gist.insert(v, u64::from(slot.0));
        }
        let part = PartitionView {
            source: &heap,
            pk: None,
            indexes: &[],
            gist: Some(&gist),
            tindex: None,
        };
        let mut out = Vec::new();
        let mut m = ScanMetrics::default();
        let path = scan_partition(
            site(),
            &part,
            &def(),
            &SysSpec::AsOf(SysTime(10)),
            &AppSpec::AsOf(AppDate(5)),
            &[],
            SysTime(200),
            true,
            MorselExec::workers(1),
            &mut out,
            &mut m,
        )
        .unwrap();
        assert_eq!(path, AccessPath::GistScan("gist_t".into()));
        assert_eq!(out.len(), 11, "versions with sys_start <= 10");
        assert!(m.index_probes >= 11);
    }

    #[test]
    fn parallel_scan_identical_to_sequential() {
        // Big enough for several morsels, with tombstones to make slot
        // positions and live count disagree.
        let mut heap = heap_with(5000);
        for slot in [3u32, 999, 2048, 4096] {
            heap.remove(bitempo_storage::SlotId(slot));
        }
        let part = PartitionView {
            source: &heap,
            pk: None,
            indexes: &[],
            gist: None,
            tindex: None,
        };
        let scan = |workers: usize| {
            let mut out = Vec::new();
            let mut m = ScanMetrics::default();
            let path = scan_partition(
                site(),
                &part,
                &def(),
                &SysSpec::AsOf(SysTime(2500)),
                &AppSpec::All,
                &[],
                SysTime(9000),
                false,
                MorselExec::workers(workers),
                &mut out,
                &mut m,
            )
            .unwrap();
            assert_eq!(path, AccessPath::FullScan { partitions: 1 });
            (out, m)
        };
        let (seq_rows, seq_m) = scan(1);
        assert_eq!(seq_m.morsels, 5, "5000 slots => 5 morsels");
        assert_eq!(seq_m.rows_visited, 4996, "tombstones are skipped");
        for workers in [2, 4, 8] {
            let (par_rows, par_m) = scan(workers);
            assert_eq!(par_rows, seq_rows, "workers={workers}");
            assert_eq!(par_m, seq_m, "workers={workers}");
        }
    }

    #[test]
    fn reconstructed_source_binary_search() {
        let recon = Reconstructed(vec![
            (2, mk_version(2, 20, 0, None)),
            (5, mk_version(5, 50, 0, None)),
            (9, mk_version(9, 90, 0, None)),
        ]);
        assert!(recon.version(5).is_some());
        assert!(recon.version(3).is_none());
        assert_eq!(recon.len(), 3);
        let mut n = 0;
        recon.for_each(&mut |_, _| n += 1);
        assert_eq!(n, 3);
    }

    #[test]
    fn full_key_equality_detection() {
        let d = def();
        assert_eq!(
            full_key_equality(&d, &[ColRange::eq(0, Value::Int(3))]),
            Some(vec![Value::Int(3)])
        );
        assert_eq!(
            full_key_equality(&d, &[ColRange::eq(1, Value::Int(3))]),
            None
        );
        let range_pred = ColRange::between(
            0,
            Bound::Included(Value::Int(1)),
            Bound::Included(Value::Int(5)),
        );
        assert_eq!(full_key_equality(&d, &[range_pred]), None);
    }

    fn tindex_over(heap: &Heap<Version>) -> TemporalIndex {
        let mut tix = TemporalIndex::new("tix_t", 64);
        for (slot, v) in heap.iter() {
            tix.insert(u64::from(slot.0), v.app, v.sys);
        }
        tix.prepare();
        tix
    }

    #[test]
    fn temporal_probe_chosen_when_selective_and_matches_full_scan() {
        let heap = heap_with(1000);
        let tix = tindex_over(&heap);
        let part = PartitionView {
            source: &heap,
            pk: None,
            indexes: &[],
            gist: None,
            tindex: Some(&tix),
        };
        let bare = PartitionView {
            source: &heap,
            pk: None,
            indexes: &[],
            gist: None,
            tindex: None,
        };
        // Selective: visible at t5 → 6 of 1000 versions.
        let run = |part: &PartitionView| {
            let mut out = Vec::new();
            let mut m = ScanMetrics::default();
            let path = scan_partition(
                site(),
                part,
                &def(),
                &SysSpec::AsOf(SysTime(5)),
                &AppSpec::All,
                &[],
                SysTime(2000),
                false,
                MorselExec::workers(1),
                &mut out,
                &mut m,
            )
            .unwrap();
            (path, out, m)
        };
        let (path, out, m) = run(&part);
        assert_eq!(path, AccessPath::TemporalProbe("tix_t".into()));
        assert_eq!(out.len(), 6, "versions 0..=5 visible at t5");
        assert_eq!(m.index_probes, 6);
        assert_eq!(m.index_hits, 6, "the superset was exact here");
        assert!(m.index_node_visits > 0, "probe work is accounted");
        assert_eq!(m.morsels, 0, "no morsels on the probe path");
        let (bare_path, bare_out, _) = run(&bare);
        assert_eq!(bare_path, AccessPath::FullScan { partitions: 1 });
        assert_eq!(out, bare_out, "probe output identical to full scan");
    }

    #[test]
    fn temporal_probe_declined_when_not_selective() {
        let heap = heap_with(1000);
        let tix = tindex_over(&heap);
        let part = PartitionView {
            source: &heap,
            pk: None,
            indexes: &[],
            gist: None,
            tindex: Some(&tix),
        };
        let mut out = Vec::new();
        let mut m = ScanMetrics::default();
        // AS OF t900 → ~90 % of versions qualify: scan wins.
        let path = scan_partition(
            site(),
            &part,
            &def(),
            &SysSpec::AsOf(SysTime(900)),
            &AppSpec::All,
            &[],
            SysTime(2000),
            false,
            MorselExec::workers(1),
            &mut out,
            &mut m,
        )
        .unwrap();
        assert_eq!(path, AccessPath::FullScan { partitions: 1 });
        assert_eq!(out.len(), 901);
    }

    #[test]
    fn merge_access_prefers_specific() {
        let merged = merge_access(vec![
            AccessPath::FullScan { partitions: 1 },
            AccessPath::IndexScan("ix".into()),
        ]);
        assert_eq!(merged, AccessPath::IndexScan("ix".into()));
        let merged = merge_access(vec![
            AccessPath::FullScan { partitions: 1 },
            AccessPath::FullScan { partitions: 2 },
        ]);
        assert_eq!(merged, AccessPath::FullScan { partitions: 3 });
    }

    #[test]
    fn gist_rect_construction() {
        let r =
            gist_query_rect(&SysSpec::Current, &AppSpec::AsOf(AppDate(10)), SysTime(42)).unwrap();
        assert_eq!((r.x_min, r.x_max), (10, 10));
        assert_eq!((r.y_min, r.y_max), (42, 42));
        assert!(gist_query_rect(&SysSpec::All, &AppSpec::All, SysTime(0)).is_none());
    }

    #[test]
    fn gist_scan_with_empty_app_range_probes_nothing() {
        let heap = heap_with(100);
        let mut gist = GistIndex::new("gist_t");
        for (slot, v) in heap.iter() {
            gist.insert(v, u64::from(slot.0));
        }
        let part = PartitionView {
            source: &heap,
            pk: None,
            indexes: &[],
            gist: Some(&gist),
            tindex: None,
        };
        // Empty application window [5, 5): no version can qualify, and the
        // query rect is inverted — the probe must return no slots instead of
        // spuriously matching versions that straddle day 5.
        let empty = AppPeriod::new(AppDate(5), AppDate(5));
        let rect = gist_query_rect(&SysSpec::All, &AppSpec::Range(empty), SysTime(200)).unwrap();
        assert!(rect.is_empty());
        let mut out = Vec::new();
        let mut m = ScanMetrics::default();
        let path = scan_partition(
            site(),
            &part,
            &def(),
            &SysSpec::All,
            &AppSpec::Range(empty),
            &[],
            SysTime(200),
            true,
            MorselExec::workers(1),
            &mut out,
            &mut m,
        )
        .unwrap();
        assert_eq!(path, AccessPath::GistScan("gist_t".into()));
        assert!(out.is_empty());
        assert_eq!(m.index_probes, 0, "no false-positive probes");
    }
}
