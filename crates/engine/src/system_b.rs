//! System B: a row store with vertically partitioned temporal metadata.
//!
//! Archetype (paper §5.2): *"the current table does not contain any temporal
//! information, as it is vertically partitioned into a separate table. The
//! history table extends the schema of the current table with attributes for
//! the system time validity"*; updates go *"first to an undo log"*; the
//! system *"records more detailed metadata, e.g. on transaction identifiers
//! and the update query type"*.
//!
//! Two costs follow and are modelled physically, because they explain the
//! paper's System B results:
//!
//! 1. **Reconstruction.** Every access to the current partition must join
//!    the value part with the temporal part. The paper observed this done
//!    as a sort/merge join *with sorting on both sides* and a system index
//!    on the join attribute going unused (§5.3.1) — so that is literally
//!    what [`SystemB`] does on every scan, even indexed key lookups
//!    (Figs 2, 8, 12).
//! 2. **Undo-log staging.** Superseded versions accumulate in an undo log
//!    drained to the history table in batches; the draining transaction
//!    absorbs the cost, producing the paper's two-orders-of-magnitude 97th
//!    percentile loading latencies (§5.8, Fig 16).

use crate::api::{
    AppSpec, BitemporalEngine, ColRange, IndexKind, ScanOutput, SysSpec, TableStats, TuningConfig,
};
use crate::catalog::Catalog;
use crate::index::{IndexDef, IndexedCol, OrderedIndex};
use crate::morsel::ScanMetrics;
use crate::rowscan::{merge_access, scan_partition, PartitionView, Reconstructed, ScanSite};
use crate::system_a::{
    build_history_tindex, build_tuning_defs, overwrite_period, sequenced_dml, SequencedOps,
};
use crate::version::Version;
use bitempo_core::{
    obs, AppPeriod, Error, Key, Result, Row, SysPeriod, SysTime, TableDef, TableId, TemporalClass,
    Value,
};
use bitempo_storage::{Heap, SlotId};
use bitempo_tindex::{IndexFootprint, TemporalIndex};
use std::collections::{BTreeMap, HashMap};

/// Undo-log entries drained to the history table per batch. Roughly 3 % of
/// single-scenario load transactions trigger a drain, matching the paper's
/// "5 % of the values were two orders of magnitude higher" (§5.8).
const UNDO_DRAIN_THRESHOLD: usize = 32;

/// Operation metadata recorded with each history record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoryMeta {
    /// Transaction identifier (the closing commit's logical time).
    pub txn: u64,
    /// Update query type (0 = supersede; reserved codes for future use).
    pub op: u8,
}

#[derive(Debug, Default)]
struct TableB {
    /// Value part of the current table — no temporal columns.
    cur_values: Heap<Row>,
    /// Temporal part of the current table, vertically partitioned away.
    cur_temporal: BTreeMap<u64, (AppPeriod, SysTime)>,
    history: Heap<Version>,
    hist_meta: Vec<HistoryMeta>,
    undo: Vec<(Version, HistoryMeta)>,
    pk: Option<OrderedIndex>,
    cur_indexes: Vec<OrderedIndex>,
    hist_indexes: Vec<OrderedIndex>,
    hist_key_index: Option<usize>,
    key_map: HashMap<Key, Vec<u64>>,
    /// The history table's physical layout: slots ordered by closing time.
    /// System B stores history "in an optimized and compressed format using
    /// a background process" (paper §2.4/§5.8) — this is that format, and
    /// rebuilding it on every undo-log drain is what makes ~3 % of load
    /// transactions orders of magnitude slower than the median (Fig 16).
    hist_layout: Vec<u32>,
    /// Size of the compressed history image after the last rewrite.
    compressed_bytes: u64,
    /// Optional temporal index over the *drained* history partition. Staged
    /// undo entries are invisible to it by design — the staging partition
    /// stays sequential-only, mirroring how System B's background writer is
    /// the only process that touches the optimized history format.
    tindex: Option<TemporalIndex>,
    /// Temporal index over the current partition, keyed by the same uids
    /// the vertically partitioned sides share, so probe candidates resolve
    /// through the reconstructed merge-join view.
    cur_tindex: Option<TemporalIndex>,
}

impl TableB {
    /// The sort/merge reconstruction of the current partition: collects and
    /// *sorts both sides*, then merge-joins them into full versions.
    fn reconstruct_current(&self) -> Reconstructed {
        let mut temporal: Vec<(u64, AppPeriod, SysTime)> = self
            .cur_temporal
            .iter()
            .map(|(&uid, &(app, start))| (uid, app, start))
            .collect();
        // Both sides are sorted explicitly even though they arrive in uid
        // order — System B's observed plan sorts both inputs (paper §5.3.1).
        temporal.sort_unstable_by_key(|e| e.0);
        let mut values: Vec<(u64, Row)> = self
            .cur_values
            .iter()
            .map(|(slot, row)| (u64::from(slot.0), row.clone()))
            .collect();
        values.sort_unstable_by_key(|e| e.0);

        let mut out = Vec::with_capacity(values.len());
        let mut ti = temporal.iter().peekable();
        for (uid, row) in values {
            while ti.peek().is_some_and(|t| t.0 < uid) {
                ti.next();
            }
            if let Some(&&(tuid, app, start)) = ti.peek() {
                if tuid == uid {
                    out.push((
                        uid,
                        Version {
                            row,
                            app,
                            sys: SysPeriod::since(start),
                        },
                    ));
                    ti.next();
                }
            }
        }
        Reconstructed(out)
    }

    fn drain_undo(&mut self) {
        if self.undo.is_empty() {
            return;
        }
        for (v, meta) in self.undo.drain(..) {
            let slot = self.history.insert(v.clone());
            let slot64 = u64::from(slot.0);
            debug_assert_eq!(slot64 as usize, self.hist_meta.len());
            self.hist_meta.push(meta);
            for ix in &mut self.hist_indexes {
                ix.insert(&v, slot64);
            }
            if let Some(tix) = &mut self.tindex {
                tix.insert(slot64, v.app, v.sys);
            }
        }
        if let Some(tix) = &mut self.tindex {
            tix.prepare();
        }
        self.rebuild_compressed_layout();
    }

    /// The background writer maintains the history "in an optimized and
    /// compressed format": merging a drained batch rewrites the whole
    /// compressed archive — an O(H) pass over every stored value plus an
    /// O(H log H) re-sort by closing time, absorbed by whichever
    /// transaction crossed the threshold. This is the mechanism behind
    /// the paper's two-orders-of-magnitude 97th-percentile load spikes.
    /// Checkpoint restore also calls this, because the layout is physical
    /// state an uncrashed engine would have.
    fn rebuild_compressed_layout(&mut self) {
        let mut layout: Vec<(u64, u32)> = self
            .history
            .iter()
            .map(|(slot, v)| (v.sys.end.0, slot.0))
            .collect();
        layout.sort_unstable();
        self.hist_layout = layout.into_iter().map(|(_, s)| s).collect();
        let mut compressed_bytes: u64 = 0;
        for (_, v) in self.history.iter() {
            for value in v.row.values() {
                compressed_bytes = compressed_bytes.wrapping_add(match value {
                    // Re-encoding walks every payload byte, like the real
                    // compressor would.
                    bitempo_core::Value::Str(s) => s.as_bytes().iter().fold(0u64, |acc, &b| {
                        acc.wrapping_mul(31).wrapping_add(u64::from(b))
                    }),
                    bitempo_core::Value::Null => 1,
                    bitempo_core::Value::Int(i) => *i as u64,
                    bitempo_core::Value::Double(d) => d.to_bits(),
                    bitempo_core::Value::Date(d) => d.0 as u64,
                    bitempo_core::Value::SysTime(t) => t.0,
                });
            }
        }
        self.compressed_bytes = compressed_bytes;
    }
}

/// The System B engine. See module docs.
#[derive(Debug, Default)]
pub struct SystemB {
    catalog: Catalog,
    tables: Vec<TableB>,
    now: SysTime,
    tuning: TuningConfig,
}

impl SystemB {
    /// Creates an empty engine.
    pub fn new() -> SystemB {
        SystemB::default()
    }

    fn version_of(&self, table: TableId, uid: u64) -> Option<Version> {
        let t = self.table(table);
        let row = t.cur_values.get(SlotId(uid as u32))?.clone();
        let &(app, start) = t.cur_temporal.get(&uid)?;
        Some(Version {
            row,
            app,
            sys: SysPeriod::since(start),
        })
    }

    /// `TableId`s are issued densely by the catalog, so indexing with one it
    /// handed out cannot go out of bounds.
    fn table(&self, table: TableId) -> &TableB {
        // tblint: allow(TB004) TableId is catalog-issued and dense; sole indexing point for reads
        &self.tables[table.0 as usize]
    }

    fn table_mut(&mut self, table: TableId) -> &mut TableB {
        // tblint: allow(TB004) TableId is catalog-issued and dense; sole indexing point for writes
        &mut self.tables[table.0 as usize]
    }
}

impl SequencedOps for SystemB {
    fn def(&self, table: TableId) -> &TableDef {
        self.catalog.def(table)
    }
    fn pending_time(&self) -> SysTime {
        self.now.next()
    }
    fn open_slots(&self, table: TableId, key: &Key) -> Vec<u64> {
        self.table(table)
            .key_map
            .get(key)
            .cloned()
            .unwrap_or_default()
    }
    fn peek(&self, table: TableId, slot: u64) -> Option<Version> {
        self.version_of(table, slot)
    }
    fn close(&mut self, table: TableId, uid: u64, end: SysTime) -> Result<Version> {
        let Some(before) = self.version_of(table, uid) else {
            return Err(Error::Internal(format!(
                "closing uid {uid} with no live version"
            )));
        };
        let def_key = self.catalog.def(table).key.clone();
        let nontemporal = self.catalog.def(table).temporal == TemporalClass::NonTemporal;
        let t = self.table_mut(table);
        t.cur_values.remove(SlotId(uid as u32));
        t.cur_temporal.remove(&uid);
        if let Some(tix) = &mut t.cur_tindex {
            tix.close(uid, end);
        }
        if let Some(pk) = &mut t.pk {
            pk.remove(&before, uid);
        }
        for ix in &mut t.cur_indexes {
            ix.remove(&before, uid);
        }
        let key = Key::from_row(&before.row, &def_key);
        if let Some(slots) = t.key_map.get_mut(&key) {
            slots.retain(|&s| s != uid);
        }
        let mut closed = before.clone();
        closed.sys = SysPeriod::new(closed.sys.start, end);
        if !nontemporal && !closed.sys.is_empty() {
            t.undo.push((closed, HistoryMeta { txn: end.0, op: 0 }));
            if t.undo.len() >= UNDO_DRAIN_THRESHOLD {
                t.drain_undo();
            }
        }
        Ok(before)
    }
    fn insert_version_at(&mut self, table: TableId, version: Version) {
        let def_key = self.catalog.def(table).key.clone();
        let t = self.table_mut(table);
        let slot = t.cur_values.insert(version.row.clone());
        let uid = u64::from(slot.0);
        t.cur_temporal.insert(uid, (version.app, version.sys.start));
        if let Some(pk) = &mut t.pk {
            pk.insert(&version, uid);
        }
        for ix in &mut t.cur_indexes {
            ix.insert(&version, uid);
        }
        let key = Key::from_row(&version.row, &def_key);
        t.key_map.entry(key).or_default().push(uid);
        if let Some(tix) = &mut t.cur_tindex {
            tix.insert(uid, version.app, version.sys);
        }
    }
}

impl BitemporalEngine for SystemB {
    fn name(&self) -> &'static str {
        "System B"
    }

    fn architecture(&self) -> &'static str {
        "row store; current table vertically partitioned (values / temporal metadata, \
         merge-joined at access time); undo-log staging into a history table that carries \
         transaction-id and operation metadata"
    }

    fn create_table(&mut self, def: TableDef) -> Result<TableId> {
        let pk = (!def.key.is_empty()).then(|| {
            OrderedIndex::new(IndexDef {
                name: format!("pk_{}", def.name),
                cols: def.key.iter().map(|&c| IndexedCol::Value(c)).collect(),
                kind: IndexKind::BTree,
            })
        });
        let id = self.catalog.create(def)?;
        self.tables.push(TableB {
            pk,
            ..TableB::default()
        });
        Ok(id)
    }

    fn resolve(&self, name: &str) -> Result<TableId> {
        self.catalog.resolve(name)
    }

    fn table_names(&self) -> Vec<String> {
        self.catalog.iter().map(|(_, d)| d.name.clone()).collect()
    }

    fn table_def(&self, table: TableId) -> &TableDef {
        self.catalog.def(table)
    }

    fn apply_tuning(&mut self, tuning: &TuningConfig) -> Result<()> {
        self.tuning = tuning.clone();
        let defs: Vec<(TableId, TableDef)> =
            self.catalog.iter().map(|(i, d)| (i, d.clone())).collect();
        for (id, def) in defs {
            let t = self.table_mut(id);
            t.drain_undo();
            t.cur_indexes.clear();
            t.hist_indexes.clear();
            t.hist_key_index = None;
            let mut cur_defs = Vec::new();
            let mut hist_defs = Vec::new();
            build_tuning_defs(
                &def,
                tuning,
                &mut cur_defs,
                &mut hist_defs,
                &mut t.hist_key_index,
            )?;
            t.cur_indexes = cur_defs.into_iter().map(OrderedIndex::new).collect();
            t.hist_indexes = hist_defs.into_iter().map(OrderedIndex::new).collect();
            let recon = t.reconstruct_current();
            for ix in &mut t.cur_indexes {
                for (uid, v) in &recon.0 {
                    ix.insert(v, *uid);
                }
            }
            let hist_entries: Vec<(u64, Version)> = t
                .history
                .iter()
                .map(|(s, v)| (u64::from(s.0), v.clone()))
                .collect();
            for ix in &mut t.hist_indexes {
                for (slot, v) in &hist_entries {
                    ix.insert(v, *slot);
                }
            }
            t.tindex = (tuning.temporal_index && def.has_system_time())
                .then(|| build_history_tindex(&def.name, &t.history));
            t.cur_tindex = (tuning.temporal_index && def.has_system_time()).then(|| {
                let mut tix = TemporalIndex::new(
                    format!("tx_cur_{}", def.name),
                    bitempo_tindex::timeline::DEFAULT_CHECKPOINT_EVERY,
                );
                for (uid, v) in &recon.0 {
                    tix.insert(*uid, v.app, v.sys);
                }
                tix.prepare();
                tix
            });
        }
        Ok(())
    }

    fn insert(&mut self, table: TableId, row: Row, app: Option<AppPeriod>) -> Result<()> {
        let def = self.catalog.def(table);
        if row.arity() != def.schema.arity() {
            return Err(Error::Invalid(format!(
                "arity {} vs schema {} for {}",
                row.arity(),
                def.schema.arity(),
                def.name
            )));
        }
        let app = match (def.temporal, app) {
            (TemporalClass::Bitemporal, Some(p)) if p.is_empty() => {
                return Err(Error::EmptyPeriod(format!("{p}")))
            }
            (TemporalClass::Bitemporal, Some(p)) => p,
            (TemporalClass::Bitemporal, None) => AppPeriod::ALL,
            (_, Some(_)) => {
                return Err(Error::Unsupported(format!(
                    "application period on table {}",
                    def.name
                )))
            }
            (_, None) => AppPeriod::ALL,
        };
        let sys = if def.temporal == TemporalClass::NonTemporal {
            SysPeriod::ALL
        } else {
            SysPeriod::since(self.pending_time())
        };
        self.insert_version_at(table, Version { row, app, sys });
        Ok(())
    }

    fn update(
        &mut self,
        table: TableId,
        key: &Key,
        updates: &[(usize, Value)],
        portion: Option<AppPeriod>,
    ) -> Result<usize> {
        sequenced_dml(self, table, key, portion, Some(updates))
    }

    fn delete(&mut self, table: TableId, key: &Key, portion: Option<AppPeriod>) -> Result<usize> {
        sequenced_dml(self, table, key, portion, None)
    }

    fn overwrite_app_period(
        &mut self,
        table: TableId,
        key: &Key,
        period: AppPeriod,
    ) -> Result<usize> {
        overwrite_period(self, table, key, period)
    }

    fn commit(&mut self) -> SysTime {
        self.now = self.now.next();
        self.now
    }

    fn now(&self) -> SysTime {
        self.now
    }

    fn advance_clock(&mut self, to: SysTime) {
        if self.now < to {
            self.now = to;
        }
    }

    fn scan(
        &self,
        table: TableId,
        sys: &SysSpec,
        app: &AppSpec,
        preds: &[ColRange],
    ) -> Result<ScanOutput> {
        let def = self.catalog.def(table);
        let t = self.table(table);
        let exec = self.tuning.exec();
        let _span = obs::span_dyn("engine", || format!("System B scan {}", def.name));
        let mut rows = Vec::new();
        let mut paths = Vec::new();
        let mut metrics = ScanMetrics::default();
        let site = |partition| ScanSite {
            engine: "System B",
            table: &def.name,
            partition,
        };

        // Current partition: every *temporal* table pays the
        // vertical-partition merge join; non-temporal tables are stored as
        // plain rows (System B only splits tables with system versioning).
        let recon = if def.temporal == TemporalClass::NonTemporal {
            let mut out: Vec<(u64, Version)> = t
                .cur_values
                .iter()
                .map(|(slot, row)| {
                    (
                        u64::from(slot.0),
                        Version {
                            row: row.clone(),
                            app: AppPeriod::ALL,
                            sys: bitempo_core::SysPeriod::ALL,
                        },
                    )
                })
                .collect();
            out.sort_by_key(|(uid, _)| *uid);
            Reconstructed(out)
        } else {
            t.reconstruct_current()
        };
        let cur_view = PartitionView {
            source: &recon,
            pk: t.pk.as_ref(),
            indexes: &t.cur_indexes,
            gist: None,
            tindex: t.cur_tindex.as_ref(),
        };
        paths.push(scan_partition(
            site("current"),
            &cur_view,
            def,
            sys,
            app,
            preds,
            self.now,
            self.tuning.adaptive,
            exec,
            &mut rows,
            &mut metrics,
        )?);

        if !sys.current_only() && def.has_system_time() {
            let hist_view = PartitionView {
                source: &t.history,
                pk: t.hist_key_index.and_then(|i| t.hist_indexes.get(i)),
                indexes: &t.hist_indexes,
                gist: None,
                tindex: t.tindex.as_ref(),
            };
            paths.push(scan_partition(
                site("history"),
                &hist_view,
                def,
                sys,
                app,
                preds,
                self.now,
                self.tuning.adaptive,
                exec,
                &mut rows,
                &mut metrics,
            )?);
            // Staged, not-yet-drained undo entries form a third partition
            // that only sequential access can see.
            if !t.undo.is_empty() {
                let staged = Reconstructed(
                    t.undo
                        .iter()
                        .enumerate()
                        .map(|(i, (v, _))| (i as u64, v.clone()))
                        .collect(),
                );
                let undo_view = PartitionView {
                    source: &staged,
                    pk: None,
                    indexes: &[],
                    gist: None,
                    tindex: None,
                };
                paths.push(scan_partition(
                    site("staging"),
                    &undo_view,
                    def,
                    sys,
                    app,
                    preds,
                    self.now,
                    self.tuning.adaptive,
                    exec,
                    &mut rows,
                    &mut metrics,
                )?);
            }
        }
        let out = ScanOutput {
            access: merge_access(paths.clone()),
            partition_paths: paths,
            rows,
            metrics,
        };
        #[cfg(debug_assertions)]
        crate::api::validate_scan_output(def, sys, app, preds, &out)
            .unwrap_or_else(|msg| panic!("System B scan postcondition: {msg}"));
        Ok(out)
    }

    fn lookup_key(
        &self,
        table: TableId,
        key: &Key,
        sys: &SysSpec,
        app: &AppSpec,
    ) -> Result<ScanOutput> {
        let def = self.catalog.def(table);
        let preds: Vec<ColRange> = def
            .key
            .iter()
            .zip(key.to_values())
            .map(|(&c, v)| ColRange::eq(c, v))
            .collect();
        self.scan(table, sys, app, &preds)
    }

    fn stats(&self, table: TableId) -> TableStats {
        let t = self.table(table);
        TableStats {
            current_rows: t.cur_values.len(),
            history_rows: t.history.len() + t.undo.len(),
        }
    }

    fn supports_manual_system_time(&self) -> bool {
        false
    }

    fn bulk_load(
        &mut self,
        _table: TableId,
        _versions: Vec<(Row, AppPeriod, SysPeriod)>,
    ) -> Result<()> {
        Err(Error::Unsupported(
            "bulk load with manual system time".into(),
        ))
    }

    fn checkpoint(&mut self) {
        for t in &mut self.tables {
            t.drain_undo();
            if let Some(tix) = &mut t.tindex {
                tix.prepare();
            }
            if let Some(tix) = &mut t.cur_tindex {
                tix.prepare();
            }
        }
    }

    fn temporal_index_footprint(&self) -> IndexFootprint {
        self.tables
            .iter()
            .flat_map(|t| t.tindex.iter().chain(t.cur_tindex.iter()))
            .fold(IndexFootprint::default(), |acc, tix| {
                acc.merged(tix.footprint())
            })
    }

    fn snapshot_versions(&self, table: TableId) -> Result<Vec<Version>> {
        let t = self.table(table);
        let mut out: Vec<Version> = t
            .reconstruct_current()
            .0
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        out.extend(t.history.iter().map(|(_, v)| v.clone()));
        // Staged undo entries are part of logical history even before the
        // background writer drains them (snapshots taken after checkpoint
        // find this empty).
        out.extend(t.undo.iter().map(|(v, _)| v.clone()));
        Ok(out)
    }

    fn restore(&mut self, table: TableId, versions: Vec<Version>, now: SysTime) -> Result<()> {
        let def = self.catalog.def(table);
        let pk = (!def.key.is_empty()).then(|| {
            OrderedIndex::new(IndexDef {
                name: format!("pk_{}", def.name),
                cols: def.key.iter().map(|&c| IndexedCol::Value(c)).collect(),
                kind: IndexKind::BTree,
            })
        });
        *self.table_mut(table) = TableB {
            pk,
            ..TableB::default()
        };
        for v in versions {
            if v.sys.is_current() {
                self.insert_version_at(table, v);
            } else {
                // Closed versions land directly in the drained history, with
                // the metadata the undo-log path would have recorded: the
                // closing commit's transaction id and the supersede op code.
                let meta = HistoryMeta {
                    txn: v.sys.end.0,
                    op: 0,
                };
                let t = self.table_mut(table);
                let slot = t.history.insert(v);
                debug_assert_eq!(u64::from(slot.0) as usize, t.hist_meta.len());
                t.hist_meta.push(meta);
            }
        }
        self.table_mut(table).rebuild_compressed_layout();
        self.now = now;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::AccessPath;
    use crate::testutil::{bitemp_table, insert_rows, simple_row};
    use bitempo_core::{AppDate, Period};

    #[test]
    fn basic_dml_and_time_travel() {
        let mut e = SystemB::new();
        let t = e.create_table(bitemp_table("t")).unwrap();
        insert_rows(&mut e, t, &[(1, 10), (2, 20)]);
        let t1 = e.now();
        e.update(t, &Key::int(1), &[(1, Value::Int(11))], None)
            .unwrap();
        e.commit();
        let out = e.scan(t, &SysSpec::Current, &AppSpec::All, &[]).unwrap();
        assert_eq!(out.rows.len(), 2);
        let out = e.scan(t, &SysSpec::AsOf(t1), &AppSpec::All, &[]).unwrap();
        let mut vals: Vec<i64> = out
            .rows
            .iter()
            .map(|r| r.get(1).as_int().unwrap())
            .collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![10, 20]);
    }

    #[test]
    fn undo_log_stages_until_threshold() {
        let mut e = SystemB::new();
        let t = e.create_table(bitemp_table("t")).unwrap();
        insert_rows(&mut e, t, &[(1, 0)]);
        // A handful of updates stays in the undo log...
        for i in 0..5 {
            e.update(t, &Key::int(1), &[(1, Value::Int(i))], None)
                .unwrap();
            e.commit();
        }
        let tb = &e.tables[0];
        assert_eq!(tb.undo.len(), 5);
        assert_eq!(tb.history.len(), 0);
        // ...but history queries still see the staged versions.
        let out = e.scan(t, &SysSpec::All, &AppSpec::All, &[]).unwrap();
        assert_eq!(out.rows.len(), 6);
        // Crossing the threshold drains.
        for i in 0..(UNDO_DRAIN_THRESHOLD as i64) {
            e.update(t, &Key::int(1), &[(1, Value::Int(100 + i))], None)
                .unwrap();
            e.commit();
        }
        let tb = &e.tables[0];
        assert!(tb.history.len() >= UNDO_DRAIN_THRESHOLD);
        assert_eq!(tb.hist_meta.len(), tb.history.len());
        // checkpoint drains the remainder.
        e.checkpoint();
        assert!(e.tables[0].undo.is_empty());
        let out = e.scan(t, &SysSpec::All, &AppSpec::All, &[]).unwrap();
        assert_eq!(out.rows.len(), 6 + UNDO_DRAIN_THRESHOLD);
    }

    #[test]
    fn reconstruction_joins_value_and_temporal_parts() {
        let mut e = SystemB::new();
        let t = e.create_table(bitemp_table("t")).unwrap();
        e.insert(
            t,
            simple_row(1, 10),
            Some(Period::new(AppDate(5), AppDate(15))),
        )
        .unwrap();
        e.commit();
        let recon = e.tables[0].reconstruct_current();
        assert_eq!(recon.0.len(), 1);
        let v = &recon.0[0].1;
        assert_eq!(v.app, Period::new(AppDate(5), AppDate(15)));
        assert!(v.sys.is_current());
        assert_eq!(v.row.get(1), &Value::Int(10));
    }

    #[test]
    fn key_lookup_uses_pk_but_still_reconstructs() {
        let mut e = SystemB::new();
        let t = e.create_table(bitemp_table("t")).unwrap();
        insert_rows(&mut e, t, &[(1, 1), (2, 2), (3, 3)]);
        let out = e
            .lookup_key(t, &Key::int(2), &SysSpec::Current, &AppSpec::All)
            .unwrap();
        assert!(matches!(out.access, AccessPath::KeyLookup(_)));
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0].get(1), &Value::Int(2));
    }

    #[test]
    fn sequenced_portion_update_matches_system_a() {
        // The same scenario as SystemA's test, proving engines agree.
        let mut a = crate::SystemA::new();
        let mut b = SystemB::new();
        for e in [&mut a as &mut dyn BitemporalEngine, &mut b] {
            let t = e.create_table(bitemp_table("t")).unwrap();
            e.insert(
                t,
                simple_row(1, 100),
                Some(Period::new(AppDate(0), AppDate(100))),
            )
            .unwrap();
            e.commit();
            e.update(
                t,
                &Key::int(1),
                &[(1, Value::Int(777))],
                Some(Period::new(AppDate(20), AppDate(40))),
            )
            .unwrap();
            e.commit();
        }
        let ta = a.resolve("t").unwrap();
        let tb = b.resolve("t").unwrap();
        let mut ra = a.scan(ta, &SysSpec::All, &AppSpec::All, &[]).unwrap().rows;
        let mut rb = b.scan(tb, &SysSpec::All, &AppSpec::All, &[]).unwrap().rows;
        ra.sort();
        rb.sort();
        assert_eq!(ra, rb);
    }

    #[test]
    fn tuning_rebuild_covers_staged_history() {
        let mut e = SystemB::new();
        let t = e.create_table(bitemp_table("t")).unwrap();
        insert_rows(&mut e, t, &[(1, 0)]);
        for i in 0..10 {
            e.update(t, &Key::int(1), &[(1, Value::Int(i))], None)
                .unwrap();
            e.commit();
        }
        e.apply_tuning(&TuningConfig::key_time()).unwrap();
        assert!(e.tables[0].undo.is_empty(), "tuning drains the undo log");
        let out = e
            .lookup_key(t, &Key::int(1), &SysSpec::All, &AppSpec::All)
            .unwrap();
        assert_eq!(out.rows.len(), 11);
        assert!(matches!(out.access, AccessPath::KeyLookup(_)));
    }

    #[test]
    fn temporal_tuning_probes_drained_history() {
        let mut e = SystemB::new();
        let t = e.create_table(bitemp_table("t")).unwrap();
        insert_rows(&mut e, t, &[(1, 0)]);
        for i in 0..8 {
            e.update(t, &Key::int(1), &[(1, Value::Int(i))], None)
                .unwrap();
            e.commit();
        }
        let early = e.now();
        for i in 0..200 {
            e.update(t, &Key::int(1), &[(1, Value::Int(100 + i))], None)
                .unwrap();
            e.commit();
        }
        let plain = e
            .scan(t, &SysSpec::AsOf(early), &AppSpec::All, &[])
            .unwrap();
        e.apply_tuning(&TuningConfig::temporal()).unwrap();
        // Maintenance after tuning: versions entering history through the
        // undo-log drain keep feeding the index.
        for i in 0..(UNDO_DRAIN_THRESHOLD as i64 + 1) {
            e.update(t, &Key::int(1), &[(1, Value::Int(500 + i))], None)
                .unwrap();
            e.commit();
        }
        let probed = e
            .scan(t, &SysSpec::AsOf(early), &AppSpec::All, &[])
            .unwrap();
        assert!(
            matches!(probed.access, AccessPath::TemporalProbe(_)),
            "expected a temporal probe, got {}",
            probed.access
        );
        assert!(probed.metrics.index_hits > 0);
        assert_eq!(probed.rows, plain.rows);
    }
}
