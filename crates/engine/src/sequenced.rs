//! Sequenced application-time DML semantics (Snodgrass; paper §2.3).
//!
//! SQL:2011's `FOR PORTION OF BUSINESS_TIME FROM x TO y` changes a row only
//! for the overlap of its application period with `[x, y)`. Where the row's
//! period overhangs the portion, unchanged *residue* rows must be created —
//! "deletes or updates may introduce additional rows when the time interval
//! of the update does not exactly correspond to the intervals of the
//! affected rows". This module computes those splits as pure data so every
//! engine applies identical logic to its own physical structures.

use bitempo_core::AppPeriod;

/// The application-time pieces resulting from applying a portion to one
/// existing version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortionSplit {
    /// The overlap that receives the update (absent for disjoint versions).
    pub affected: AppPeriod,
    /// Up to two unchanged residue periods that must be re-inserted.
    pub residues: Vec<AppPeriod>,
}

/// Computes the split of an existing version's `app` period by `portion`.
/// Returns `None` when the version is untouched (no overlap).
pub fn split_for_portion(app: AppPeriod, portion: AppPeriod) -> Option<PortionSplit> {
    let affected = app.intersect(&portion)?;
    let (left, right) = app.difference(&portion);
    let residues = [left, right].into_iter().flatten().collect();
    Some(PortionSplit { affected, residues })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitempo_core::{AppDate, Period};

    fn p(a: i64, b: i64) -> AppPeriod {
        Period::new(AppDate(a), AppDate(b))
    }

    #[test]
    fn portion_inside_splits_into_three() {
        let s = split_for_portion(p(0, 100), p(20, 40)).unwrap();
        assert_eq!(s.affected, p(20, 40));
        assert_eq!(s.residues, vec![p(0, 20), p(40, 100)]);
    }

    #[test]
    fn portion_covering_start() {
        let s = split_for_portion(p(10, 100), p(0, 50)).unwrap();
        assert_eq!(s.affected, p(10, 50));
        assert_eq!(s.residues, vec![p(50, 100)]);
    }

    #[test]
    fn portion_covering_all() {
        let s = split_for_portion(p(10, 20), p(0, 100)).unwrap();
        assert_eq!(s.affected, p(10, 20));
        assert!(s.residues.is_empty());
    }

    #[test]
    fn disjoint_portion_leaves_version_alone() {
        assert_eq!(split_for_portion(p(0, 10), p(10, 20)), None);
        assert_eq!(split_for_portion(p(30, 40), p(10, 20)), None);
    }

    #[test]
    fn residues_and_affected_partition_the_original() {
        // The pieces must tile the original period exactly (no gap/overlap).
        for (a, b, x, y) in [
            (0, 50, 10, 20),
            (0, 50, 0, 50),
            (5, 30, 0, 10),
            (5, 30, 25, 60),
        ] {
            let s = split_for_portion(p(a, b), p(x, y)).unwrap();
            let mut pieces = s.residues.clone();
            pieces.push(s.affected);
            pieces.sort_by_key(|q| q.start);
            assert_eq!(pieces.first().unwrap().start, AppDate(a));
            assert_eq!(pieces.last().unwrap().end, AppDate(b));
            for w in pieces.windows(2) {
                assert_eq!(w[0].end, w[1].start, "pieces must tile contiguously");
            }
        }
    }
}
