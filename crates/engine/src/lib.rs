//! # bitempo-engine
//!
//! Four bitemporal storage engines behind one trait, each reproducing the
//! *architecture archetype* of one of the anonymized systems in the paper
//! (§2, §5.2). All four implement the same logical bitemporal model — the
//! cross-engine equivalence tests depend on that — and differ only in
//! physical design:
//!
//! | Engine | Archetype | Physical design |
//! |---|---|---|
//! | [`SystemA`] | native bitemporal row store | current + history heap, instant history writes, auto PK index on current |
//! | [`SystemB`] | row store with vertically partitioned temporal metadata | current value/temporal split (merge-joined at scan), undo-log staging, rich history metadata |
//! | [`SystemC`] | in-memory column store, system time only | delta/main columnar partitions, snapshot recompute, indexes ignored by planning |
//! | [`SystemD`] | non-temporal RDBMS, simulated periods | single heap, manual timestamps + bulk load, B-Tree and GiST (R-Tree) indexes |
//!
//! The observation the paper leads with — *"all systems store their data in
//! regular, statically partitioned tables and rely on standard indexes as
//! well as query rewrites"* — is the design rule for this crate.

// Tests may unwrap freely; production engine code must not (TB004, and
// `clippy::unwrap_used` in Cargo.toml as the compiler-level backstop).
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod api;
pub mod catalog;
pub mod index;
pub mod morsel;
pub mod rowscan;
pub mod sequenced;
pub mod system_a;
pub mod system_b;
pub mod system_c;
pub mod system_d;
pub mod testutil;
pub mod version;

pub use api::{
    AccessPath, AppSpec, BitemporalEngine, ColRange, IndexKind, ScanOutput, SysSpec, TableStats,
    TuningConfig,
};
pub use catalog::Catalog;
pub use morsel::{MorselExec, ScanMetrics};
pub use system_a::SystemA;
pub use system_b::SystemB;
pub use system_c::SystemC;
pub use system_d::SystemD;
pub use version::Version;

/// Which engine archetype to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Native bitemporal row store (instant history writes).
    A,
    /// Row store with vertical temporal partitioning and undo-log staging.
    B,
    /// In-memory column store (delta/main), system time only.
    C,
    /// Non-temporal row store with simulated periods.
    D,
}

impl SystemKind {
    /// All four archetypes, in paper order.
    pub const ALL: [SystemKind; 4] = [SystemKind::A, SystemKind::B, SystemKind::C, SystemKind::D];

    /// Anonymized display name, as in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::A => "System A",
            SystemKind::B => "System B",
            SystemKind::C => "System C",
            SystemKind::D => "System D",
        }
    }
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Instantiates an engine of the given archetype.
pub fn build_engine(kind: SystemKind) -> Box<dyn BitemporalEngine> {
    match kind {
        SystemKind::A => Box::new(SystemA::new()),
        SystemKind::B => Box::new(SystemB::new()),
        SystemKind::C => Box::new(SystemC::new()),
        SystemKind::D => Box::new(SystemD::new()),
    }
}
