//! The engine-facing API: temporal scan specifications, DML, tuning.

use bitempo_core::{
    AppDate, AppPeriod, Key, Result, Row, SysPeriod, SysTime, TableDef, TableId, Value,
};
use std::ops::Bound;

/// System-time dimension of a scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysSpec {
    /// *Implicit* current time: no `AS OF` in the query at all. Engines with
    /// a current/history split touch only the current partition (paper
    /// §5.3.4).
    Current,
    /// *Explicit* `AS OF t` — even for `t == now` the optimizers of all
    /// three native systems failed to prune the history partition (Fig 6),
    /// and so do we: `AsOf` always visits both partitions.
    AsOf(SysTime),
    /// `FROM .. TO ..`: all versions whose system period overlaps the range.
    Range(SysPeriod),
    /// Every version ever recorded.
    All,
}

/// Application-time dimension of a scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppSpec {
    /// `AS OF DATE d`.
    AsOf(AppDate),
    /// All versions whose application period overlaps the range.
    Range(AppPeriod),
    /// No application-time constraint.
    All,
}

impl SysSpec {
    /// True if a version with system period `sys` qualifies.
    pub fn matches(&self, sys: &SysPeriod) -> bool {
        match self {
            SysSpec::Current => sys.is_current(),
            SysSpec::AsOf(t) => sys.contains_point(*t),
            SysSpec::Range(p) => sys.overlaps(p),
            SysSpec::All => true,
        }
    }

    /// True if this spec can be answered from the current partition alone.
    /// Only the *implicit* form qualifies — reproducing Fig 6.
    pub fn current_only(&self) -> bool {
        matches!(self, SysSpec::Current)
    }
}

impl AppSpec {
    /// True if a version with application period `app` qualifies.
    pub fn matches(&self, app: &AppPeriod) -> bool {
        match self {
            AppSpec::AsOf(d) => app.contains_point(*d),
            AppSpec::Range(p) => app.overlaps(p),
            AppSpec::All => true,
        }
    }
}

/// A pushable range predicate on a value column: `lo <= col <= hi` with the
/// usual bound semantics. The engines may satisfy these from an index; they
/// always apply them, so callers need no residual filtering for them.
#[derive(Debug, Clone)]
pub struct ColRange {
    /// Column index into the table's *value* schema.
    pub col: usize,
    /// Lower bound.
    pub lo: Bound<Value>,
    /// Upper bound.
    pub hi: Bound<Value>,
}

impl ColRange {
    /// An equality predicate `col = v`.
    pub fn eq(col: usize, v: Value) -> ColRange {
        ColRange {
            col,
            lo: Bound::Included(v.clone()),
            hi: Bound::Included(v),
        }
    }

    /// A range predicate with both bounds optional-inclusive.
    pub fn between(col: usize, lo: Bound<Value>, hi: Bound<Value>) -> ColRange {
        ColRange { col, lo, hi }
    }

    /// True if `v` satisfies the range.
    pub fn matches(&self, v: &Value) -> bool {
        let lo_ok = match &self.lo {
            Bound::Included(b) => v >= b,
            Bound::Excluded(b) => v > b,
            Bound::Unbounded => true,
        };
        let hi_ok = match &self.hi {
            Bound::Included(b) => v <= b,
            Bound::Excluded(b) => v < b,
            Bound::Unbounded => true,
        };
        lo_ok && hi_ok
    }
}

/// Which access path a scan took — surfaced so tests and the tuning study
/// can verify *why* a plan was fast or slow, the way the paper reads
/// EXPLAIN output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessPath {
    /// Sequential scan; `partitions` is how many physical partitions were
    /// walked (current, history, staging logs...).
    FullScan {
        /// Number of partitions visited.
        partitions: u8,
    },
    /// B-Tree index scan (named index).
    IndexScan(String),
    /// GiST / R-Tree index scan (System D only).
    GistScan(String),
    /// Temporal-index probe (Timeline / interval index, `bitempo-tindex`):
    /// the candidate slots came from the named temporal index instead of a
    /// partition walk.
    TemporalProbe(String),
    /// Primary-key point access through an index.
    KeyLookup(String),
}

impl std::fmt::Display for AccessPath {
    /// Compact EXPLAIN-style rendering, used by access-path traces and the
    /// bench report breakdown tables.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessPath::FullScan { partitions } => write!(f, "full-scan({partitions})"),
            AccessPath::IndexScan(name) => write!(f, "btree({name})"),
            AccessPath::GistScan(name) => write!(f, "gist({name})"),
            AccessPath::TemporalProbe(name) => write!(f, "tindex({name})"),
            AccessPath::KeyLookup(name) => write!(f, "key-lookup({name})"),
        }
    }
}

/// Index families available to the tuning study (paper §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// Ordered index (the only kind every system supports).
    BTree,
    /// Generalized search tree over period rectangles (System D only).
    Gist,
}

/// Tuning configuration applied uniformly across engines (paper §5.1):
/// *A) Time Index*, *B) Key+Time Index*, *C) Value Index*. GiST selects the
/// index implementation on System D. `workers` sets the degree of
/// morsel-parallelism for sequential scans.
#[derive(Debug, Clone)]
pub struct TuningConfig {
    /// A) app-time index on the current partition, app+sys time indexes on
    /// the history partition.
    pub time_index: bool,
    /// B) key-based access paths on the history partition.
    pub key_time_index: bool,
    /// C) value indexes: `(table name, column name)` pairs.
    pub value_index: Vec<(String, String)>,
    /// Use GiST instead of B-Tree where the engine supports it (System D).
    pub gist: bool,
    /// Attach the `bitempo-tindex` temporal index (Timeline + interval
    /// index) to history-bearing partitions and let the planner select it
    /// as an access path — the index the benchmarked 2014 systems lacked.
    pub temporal_index: bool,
    /// Adaptive re-planning: feed observed actual-vs-estimated row counts
    /// back into the optimizer's per-(site, predicate-class) correction
    /// store, so a repeated misestimated query switches access paths on
    /// re-plan. Off by default — plan stability across repeated identical
    /// scans is part of the engine contract the equivalence suites assert,
    /// so adaptivity is an explicit tuning decision, like building an
    /// index.
    pub adaptive: bool,
    /// Worker threads for morsel-parallel sequential scans (see
    /// [`crate::morsel`]). `1` scans single-threaded, exactly as before the
    /// morsel layer existed; any value produces identical results.
    pub workers: usize,
    /// Fault-injection hook: if set, the sequential-scan worker that picks
    /// up this morsel index panics, exercising the engine's panic
    /// containment ([`bitempo_core::Error::WorkerPanicked`]). Never set in
    /// real benchmark configurations.
    pub panic_morsel: Option<u64>,
    /// When a committed transaction's WAL bytes are forced to stable
    /// storage (`dur_strict` / `dur_batched_Nms` / `dur_async`). Only takes
    /// effect where a WAL is attached (the `bitempo-wal` replay driver);
    /// the engines themselves are durability-agnostic.
    pub durability: bitempo_storage::DurabilityMode,
}

impl Default for TuningConfig {
    /// No extra indexes; scans use every available core.
    fn default() -> TuningConfig {
        TuningConfig {
            time_index: false,
            key_time_index: false,
            value_index: Vec::new(),
            gist: false,
            temporal_index: false,
            adaptive: false,
            workers: default_workers(),
            panic_morsel: None,
            durability: bitempo_storage::DurabilityMode::Async,
        }
    }
}

/// The default scan parallelism: one worker per available core.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

impl TuningConfig {
    /// The out-of-the-box configuration: no extra indexes.
    pub fn none() -> TuningConfig {
        TuningConfig::default()
    }

    /// The paper's "Time Index" setting.
    pub fn time() -> TuningConfig {
        TuningConfig {
            time_index: true,
            ..Default::default()
        }
    }

    /// The paper's "Key+Time Index" setting (includes the time indexes).
    pub fn key_time() -> TuningConfig {
        TuningConfig {
            time_index: true,
            key_time_index: true,
            ..Default::default()
        }
    }

    /// The temporal-index setting: no conventional extra indexes, but the
    /// Timeline/interval index attached to every history-bearing partition.
    pub fn temporal() -> TuningConfig {
        TuningConfig {
            temporal_index: true,
            ..Default::default()
        }
    }

    /// This configuration with adaptive re-planning toggled.
    #[must_use]
    pub fn with_adaptive(mut self, on: bool) -> TuningConfig {
        self.adaptive = on;
        self
    }

    /// This configuration with the temporal index toggled.
    pub fn with_temporal_index(mut self, on: bool) -> TuningConfig {
        self.temporal_index = on;
        self
    }

    /// This configuration with the given scan parallelism.
    pub fn with_workers(mut self, workers: usize) -> TuningConfig {
        self.workers = workers.max(1);
        self
    }

    /// This configuration with a panic injected at the given morsel index
    /// (fault-injection testing only).
    pub fn with_panic_morsel(mut self, morsel: u64) -> TuningConfig {
        self.panic_morsel = Some(morsel);
        self
    }

    /// This configuration with the given durability mode.
    #[must_use]
    pub fn with_durability(mut self, mode: bitempo_storage::DurabilityMode) -> TuningConfig {
        self.durability = mode;
        self
    }

    /// The morsel execution parameters implied by this configuration.
    pub fn exec(&self) -> crate::morsel::MorselExec {
        crate::morsel::MorselExec {
            workers: self.workers,
            panic_morsel: self.panic_morsel,
        }
    }
}

/// Row counts per physical partition, used by the planner heuristics and
/// reported by the architecture-analysis experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Versions visible at the current system time.
    pub current_rows: usize,
    /// Superseded versions (in history partitions / staging areas).
    pub history_rows: usize,
}

impl TableStats {
    /// Total stored versions.
    pub fn total(&self) -> usize {
        self.current_rows + self.history_rows
    }
}

/// The result of a scan: materialized rows plus the access paths taken.
#[derive(Debug, Clone)]
pub struct ScanOutput {
    /// Rows in the table's [`TableDef::scan_schema`] layout.
    pub rows: Vec<Row>,
    /// Summary access path (the most specific one across partitions).
    pub access: AccessPath,
    /// Per-physical-partition access paths, in scan order (current first) —
    /// the EXPLAIN output of this benchmark, used by the tuning study and
    /// the plan-shape tests.
    pub partition_paths: Vec<AccessPath>,
    /// Work counters (morsels dispatched, versions visited/pruned, index
    /// probes). Deterministic: identical for every worker count.
    pub metrics: crate::morsel::ScanMetrics,
}

/// Statically checks a scan's output against the specification that
/// produced it: every row carries the declared output arity, the surfaced
/// periods satisfy the temporal specs, and every pushed predicate holds
/// (pushed predicates promise "no residual filtering needed" — see
/// [`ColRange`]). The four engines call this under `debug_assertions` after
/// every scan, so any drift between an access path and the logical
/// specification fails loudly in tests instead of skewing measurements.
pub fn validate_scan_output(
    def: &TableDef,
    sys: &SysSpec,
    app: &AppSpec,
    preds: &[ColRange],
    out: &ScanOutput,
) -> std::result::Result<(), String> {
    use bitempo_core::TemporalClass;
    let value_arity = def.schema.arity();
    let mut expected = value_arity;
    if def.temporal == TemporalClass::Bitemporal {
        expected += 2;
    }
    if def.temporal != TemporalClass::NonTemporal {
        expected += 2;
    }
    for (i, row) in out.rows.iter().enumerate() {
        if row.arity() != expected {
            return Err(format!(
                "row {i} of `{}` has arity {}, scan schema has {expected}",
                def.name,
                row.arity()
            ));
        }
        if def.temporal == TemporalClass::Bitemporal {
            match (row.get(value_arity), row.get(value_arity + 1)) {
                (Value::Date(s), Value::Date(e)) => {
                    let p = AppPeriod { start: *s, end: *e };
                    if !app.matches(&p) {
                        return Err(format!(
                            "row {i} of `{}` has app period {p} outside {app:?}",
                            def.name
                        ));
                    }
                }
                other => {
                    return Err(format!(
                        "row {i} of `{}` has non-date app period columns {other:?}",
                        def.name
                    ))
                }
            }
        }
        if def.temporal != TemporalClass::NonTemporal {
            let base = if def.temporal == TemporalClass::Bitemporal {
                value_arity + 2
            } else {
                value_arity
            };
            match (row.get(base), row.get(base + 1)) {
                (Value::SysTime(s), Value::SysTime(e)) => {
                    let p = SysPeriod { start: *s, end: *e };
                    if !sys.matches(&p) {
                        return Err(format!(
                            "row {i} of `{}` has sys period {p} outside {sys:?}",
                            def.name
                        ));
                    }
                }
                other => {
                    return Err(format!(
                        "row {i} of `{}` has non-systime period columns {other:?}",
                        def.name
                    ))
                }
            }
        }
        for p in preds {
            if p.col < value_arity && !p.matches(row.get(p.col)) {
                return Err(format!(
                    "row {i} of `{}` violates pushed predicate on column {}",
                    def.name, p.col
                ));
            }
        }
    }
    Ok(())
}

/// The common interface of all four engines.
///
/// DML executes in the context of an open transaction; [`Self::commit`]
/// assigns the system time. The history loader replays the generator archive
/// through exactly this interface (paper §4.2), except on engines that
/// support manually-set system time (System D), where
/// [`Self::bulk_load`] is permitted.
///
/// `Send + Sync`: engines keep no interior mutability — every mutation goes
/// through `&mut self` — so shared `&self` reads from multiple threads are
/// safe by construction. The MVCC layer (`bitempo-txn`) relies on this to
/// serve snapshot reads under a shared lock while a single writer commits.
pub trait BitemporalEngine: Send + Sync {
    /// Engine display name ("System A" .. "System D").
    fn name(&self) -> &'static str;

    /// One-line physical-architecture description (for the architecture
    /// analysis experiment, paper §5.2).
    fn architecture(&self) -> &'static str;

    /// Creates a table.
    fn create_table(&mut self, def: TableDef) -> Result<TableId>;

    /// Resolves a table by name.
    fn resolve(&self, name: &str) -> Result<TableId>;

    /// All table names, in creation order (catalog listing).
    fn table_names(&self) -> Vec<String>;

    /// The logical definition of a table.
    fn table_def(&self, table: TableId) -> &TableDef;

    /// Applies a tuning configuration, building any configured indexes over
    /// existing data. Engines are free to *accept and ignore* indexes their
    /// archetype would not exploit (System C builds but never uses them).
    fn apply_tuning(&mut self, tuning: &TuningConfig) -> Result<()>;

    /// Inserts a row valid for `app` (ignored / must be `None` on
    /// non-bitemporal tables; defaults to the full axis if `None` on
    /// bitemporal ones).
    fn insert(&mut self, table: TableId, row: Row, app: Option<AppPeriod>) -> Result<()>;

    /// Sequenced update: for every version of `key` visible now whose
    /// application period overlaps `portion`, applies `updates` to the
    /// overlap and preserves the residues (paper §2.3). `None` portion means
    /// the full application axis. Returns the number of affected versions.
    fn update(
        &mut self,
        table: TableId,
        key: &Key,
        updates: &[(usize, Value)],
        portion: Option<AppPeriod>,
    ) -> Result<usize>;

    /// Sequenced delete, analogous to [`Self::update`].
    fn delete(&mut self, table: TableId, key: &Key, portion: Option<AppPeriod>) -> Result<usize>;

    /// Replaces the application period of `key`'s visible versions with
    /// `period` (the benchmark's "overwrite application time" operation,
    /// paper §3.2/Table 2). Returns the number of affected versions.
    fn overwrite_app_period(
        &mut self,
        table: TableId,
        key: &Key,
        period: AppPeriod,
    ) -> Result<usize>;

    /// Commits the open transaction and returns its system time.
    fn commit(&mut self) -> SysTime;

    /// The system time of the last committed transaction.
    fn now(&self) -> SysTime;

    /// Advances the commit clock so the *next* [`Self::commit`] lands at
    /// `to.next()` or later. Never moves the clock backwards. A sharded
    /// cluster uses this to stamp every shard's commits with the global
    /// oracle timestamp, so cross-shard snapshots line up byte-for-byte
    /// with a single-engine serial history. Read-only views ignore it.
    fn advance_clock(&mut self, _to: SysTime) {}

    /// Scans `table` under the given temporal specification, applying (and
    /// possibly index-accelerating) the pushed `preds`.
    fn scan(
        &self,
        table: TableId,
        sys: &SysSpec,
        app: &AppSpec,
        preds: &[ColRange],
    ) -> Result<ScanOutput>;

    /// Fetches all versions of one key under the temporal specification —
    /// the audit access pattern (K queries). Uses a key index if one exists.
    fn lookup_key(
        &self,
        table: TableId,
        key: &Key,
        sys: &SysSpec,
        app: &AppSpec,
    ) -> Result<ScanOutput>;

    /// Partition row counts.
    fn stats(&self, table: TableId) -> TableStats;

    /// Aggregate footprint of all attached temporal indexes (zero when the
    /// temporal index is off). The `temporal-index` benchmark reports this
    /// next to the probe-time wins so maintenance cost is never hidden.
    fn temporal_index_footprint(&self) -> bitempo_tindex::IndexFootprint {
        bitempo_tindex::IndexFootprint::default()
    }

    /// True if the engine lets the loader set system time explicitly and
    /// therefore supports bulk-loading a pre-stamped history (System D;
    /// paper §5.8).
    fn supports_manual_system_time(&self) -> bool {
        false
    }

    /// Bulk-loads fully-stamped versions. Only engines with manual system
    /// time support this; others return [`bitempo_core::Error::Unsupported`].
    fn bulk_load(
        &mut self,
        _table: TableId,
        _versions: Vec<(Row, AppPeriod, SysPeriod)>,
    ) -> Result<()> {
        Err(bitempo_core::Error::Unsupported(
            "bulk load with manual system time".into(),
        ))
    }

    /// Forces any staged/deferred physical reorganization (System B drains
    /// its undo log, System C merges delta into main). A no-op elsewhere.
    /// The benchmark calls this between loading and measuring, like the
    /// paper's warm-up runs.
    fn checkpoint(&mut self) {}

    /// Every logical version of `table` — current and historical — as the
    /// engine would stamp them, in a deterministic order. This is the
    /// engine's contribution to a durability checkpoint: callers should
    /// [`Self::checkpoint`] first so staged state (System B's undo log,
    /// System C's delta) is folded in before the snapshot is taken.
    fn snapshot_versions(&self, table: TableId) -> Result<Vec<crate::version::Version>>;

    /// Rebuilds `table` from a [`Self::snapshot_versions`] snapshot taken
    /// at system time `now`, replacing its current contents. Primary-key
    /// bookkeeping is rebuilt; tuning-dependent indexes are left empty —
    /// recovery re-applies the tuning configuration afterwards, exactly as
    /// the bench runner does after a cold load.
    fn restore(
        &mut self,
        table: TableId,
        versions: Vec<crate::version::Version>,
        now: SysTime,
    ) -> Result<()>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitempo_core::Period;

    #[test]
    fn sys_spec_matching() {
        let closed = SysPeriod::new(SysTime(5), SysTime(10));
        let open = SysPeriod::since(SysTime(7));
        assert!(!SysSpec::Current.matches(&closed));
        assert!(SysSpec::Current.matches(&open));
        assert!(SysSpec::AsOf(SysTime(5)).matches(&closed));
        assert!(!SysSpec::AsOf(SysTime(10)).matches(&closed));
        assert!(SysSpec::AsOf(SysTime(100)).matches(&open));
        assert!(SysSpec::Range(Period::new(SysTime(9), SysTime(20))).matches(&closed));
        assert!(!SysSpec::Range(Period::new(SysTime(10), SysTime(20))).matches(&closed));
        assert!(SysSpec::All.matches(&closed));
        assert!(SysSpec::Current.current_only());
        assert!(!SysSpec::AsOf(SysTime(0)).current_only());
    }

    #[test]
    fn app_spec_matching() {
        let p = AppPeriod::new(AppDate(10), AppDate(20));
        assert!(AppSpec::AsOf(AppDate(10)).matches(&p));
        assert!(!AppSpec::AsOf(AppDate(20)).matches(&p));
        assert!(AppSpec::Range(AppPeriod::new(AppDate(19), AppDate(30))).matches(&p));
        assert!(!AppSpec::Range(AppPeriod::new(AppDate(20), AppDate(30))).matches(&p));
        assert!(AppSpec::All.matches(&p));
    }

    #[test]
    fn col_range_bounds() {
        let r = ColRange::eq(0, Value::Int(5));
        assert!(r.matches(&Value::Int(5)));
        assert!(!r.matches(&Value::Int(6)));
        let r = ColRange::between(
            1,
            Bound::Excluded(Value::Int(10)),
            Bound::Included(Value::Int(20)),
        );
        assert!(!r.matches(&Value::Int(10)));
        assert!(r.matches(&Value::Int(11)));
        assert!(r.matches(&Value::Int(20)));
        assert!(!r.matches(&Value::Int(21)));
        let open = ColRange::between(0, Bound::Unbounded, Bound::Unbounded);
        assert!(open.matches(&Value::str("anything")));
    }

    #[test]
    fn tuning_presets() {
        assert!(!TuningConfig::none().time_index);
        assert!(TuningConfig::time().time_index);
        let kt = TuningConfig::key_time();
        assert!(kt.time_index && kt.key_time_index);
        assert!(kt.workers >= 1, "default parallelism is at least 1");
        assert_eq!(TuningConfig::none().with_workers(0).workers, 1);
        assert_eq!(TuningConfig::none().with_workers(4).workers, 4);
        assert!(!TuningConfig::none().temporal_index);
        assert!(TuningConfig::temporal().temporal_index);
        assert!(
            TuningConfig::none()
                .with_temporal_index(true)
                .temporal_index
        );
    }

    #[test]
    fn stats_total() {
        let s = TableStats {
            current_rows: 3,
            history_rows: 4,
        };
        assert_eq!(s.total(), 7);
    }
}
