//! Index wrappers: B-Tree (ordered) and GiST (R-Tree) indexes over version
//! stores, plus the selectivity estimation the engines' scan "optimizers"
//! use to decide index-vs-scan.
//!
//! The estimation is deliberately crude — a uniform interpolation between
//! the column's min and max — because that is the level of sophistication
//! the paper observed: *"for many workloads these indexes go unused, since
//! they only work on very selective workloads"* (§5.9), and plans flip from
//! index lookups to table scans on small changes in predicate selectivity
//! (§5.4.1).

use crate::api::IndexKind;
use crate::version::Version;
use bitempo_core::{obs, SysTime, Value};
use bitempo_storage::{BPlusTree, RTree, Rect};
use std::collections::BTreeMap;
use std::ops::Bound;

/// What a single index column is built over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexedCol {
    /// A value column of the table (by schema position).
    Value(usize),
    /// The application-period start.
    AppStart,
    /// The system-period start.
    SysStart,
    /// The system-period end (useful for "visible at t" probes).
    SysEnd,
}

/// Definition of one ordered index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    /// Index name, surfaced in [`crate::AccessPath`].
    pub name: String,
    /// Indexed columns, major first.
    pub cols: Vec<IndexedCol>,
    /// Physical kind.
    pub kind: IndexKind,
}

/// Extracts the index key of `version` for the given column spec.
fn extract_col(version: &Version, col: IndexedCol) -> Value {
    match col {
        IndexedCol::Value(i) => version.row.get(i).clone(),
        IndexedCol::AppStart => Value::Date(version.app.start),
        IndexedCol::SysStart => Value::SysTime(version.sys.start),
        IndexedCol::SysEnd => Value::SysTime(version.sys.end),
    }
}

/// Maps a value onto the real line for interpolation-based selectivity.
fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Double(d) => Some(*d),
        Value::Date(d) => Some(d.0 as f64),
        Value::SysTime(t) if *t == SysTime::MAX => Some(f64::INFINITY),
        Value::SysTime(t) => Some(t.0 as f64),
        _ => None,
    }
}

/// A B-Tree index over versions stored in some slot-addressed container.
#[derive(Debug, Clone)]
pub struct OrderedIndex {
    /// Definition.
    pub def: IndexDef,
    tree: BPlusTree<Vec<Value>, u64>,
    lo: f64,
    hi: f64,
    /// Entry count per distinct leading-column value, maintained on
    /// insert/remove. Feeds the equality-selectivity estimate for columns
    /// interpolation cannot handle (strings): one key group out of
    /// `distinct_first()` — instead of a hard-coded guess.
    first_col: BTreeMap<Value, u64>,
}

impl OrderedIndex {
    /// Creates an empty index.
    pub fn new(def: IndexDef) -> OrderedIndex {
        OrderedIndex {
            def,
            tree: BPlusTree::new(),
            lo: f64::INFINITY,
            hi: f64::NEG_INFINITY,
            first_col: BTreeMap::new(),
        }
    }

    /// The key this index extracts from a version.
    pub fn key_of(&self, version: &Version) -> Vec<Value> {
        self.def
            .cols
            .iter()
            .map(|&c| extract_col(version, c))
            .collect()
    }

    /// Indexes `version` under `slot`.
    pub fn insert(&mut self, version: &Version, slot: u64) {
        let key = self.key_of(version);
        if let Some(x) = numeric(&key[0]) {
            if x.is_finite() {
                self.lo = self.lo.min(x);
                self.hi = self.hi.max(x);
            }
        }
        if let Some(first) = key.first() {
            *self.first_col.entry(first.clone()).or_insert(0) += 1;
        }
        self.tree.insert(key, slot);
    }

    /// Removes `version`'s entry for `slot` (returns whether it existed).
    pub fn remove(&mut self, version: &Version, slot: u64) -> bool {
        let key = self.key_of(version);
        let existed = self.tree.remove(&key, &slot);
        if existed {
            if let Some(first) = key.first() {
                if let Some(count) = self.first_col.get_mut(first) {
                    *count -= 1;
                    if *count == 0 {
                        self.first_col.remove(first);
                    }
                }
            }
        }
        existed
    }

    /// Number of distinct leading-column values currently indexed.
    pub fn distinct_first(&self) -> usize {
        self.first_col.len()
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Slots whose *first* index column lies in `(lo, hi)`. Composite
    /// suffix columns are not constrained (callers re-filter).
    pub fn probe_range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> Vec<u64> {
        self.probe_range_counted(lo, hi, &mut 0)
    }

    /// Like [`OrderedIndex::probe_range`], but counts every leaf entry
    /// examined (including the one that terminates the range walk) into
    /// `visits` — the probe-work number scan metrics report.
    pub fn probe_range_counted(
        &self,
        lo: Bound<&Value>,
        hi: Bound<&Value>,
        visits: &mut u64,
    ) -> Vec<u64> {
        let mut span = obs::span_dyn("index", || format!("probe_range {}", self.def.name));
        // Translate single-column bounds to composite-key bounds. For the
        // upper bound we must admit any suffix, so an Included(v) bound
        // becomes "keys < [v, +inf...]" which for our comparator is
        // approximated by scanning until first column exceeds v.
        let lo_key: Bound<Vec<Value>> = match lo {
            Bound::Included(v) => Bound::Included(vec![v.clone()]),
            Bound::Excluded(v) => {
                // Excluded on first column: skip all keys whose first col
                // equals v. Vec compare makes [v] <= [v, ...], so use an
                // included bound and filter below.
                Bound::Included(vec![v.clone()])
            }
            Bound::Unbounded => Bound::Unbounded,
        };
        let lo_ref = match &lo_key {
            Bound::Included(k) => Bound::Included(k),
            Bound::Excluded(k) => Bound::Excluded(k),
            Bound::Unbounded => Bound::Unbounded,
        };
        let mut out = Vec::new();
        for (key, slot) in self.tree.range((lo_ref, Bound::Unbounded)) {
            *visits += 1;
            let first = &key[0];
            // Stop once past the upper bound.
            let past = match hi {
                Bound::Included(v) => first > v,
                Bound::Excluded(v) => first >= v,
                Bound::Unbounded => false,
            };
            if past {
                break;
            }
            // Honour an excluded lower bound on the first column.
            if let Bound::Excluded(v) = lo {
                if first == v {
                    continue;
                }
            }
            out.push(*slot);
        }
        span.arg_with("hits", || out.len().to_string());
        out
    }

    /// Slots matching an exact composite prefix `key`.
    pub fn probe_prefix(&self, key: &[Value]) -> Vec<u64> {
        self.probe_prefix_counted(key, &mut 0)
    }

    /// Like [`OrderedIndex::probe_prefix`], but counts examined leaf
    /// entries into `visits`.
    pub fn probe_prefix_counted(&self, key: &[Value], visits: &mut u64) -> Vec<u64> {
        let mut span = obs::span_dyn("index", || format!("probe_prefix {}", self.def.name));
        let lo: Vec<Value> = key.to_vec();
        let mut out = Vec::new();
        for (k, slot) in self.tree.range((Bound::Included(&lo), Bound::Unbounded)) {
            *visits += 1;
            if k.len() < key.len() || k[..key.len()] != *key {
                break;
            }
            out.push(*slot);
        }
        span.arg_with("hits", || out.len().to_string());
        out
    }

    /// Estimated fraction of entries whose first column lies in the range,
    /// by uniform interpolation. `None` if the column is not numeric or the
    /// index is empty (caller should then only use the index for equality).
    ///
    /// Bounds are honoured exactly on discrete domains (`Int`, `Date`,
    /// `SysTime` step by whole units; an excluded endpoint gives up exactly
    /// one unit, an included upper endpoint claims one), and a range that is
    /// provably empty after clipping to the indexed `[min, max]` domain —
    /// inverted bounds, `(v, v]`, `[v, v)`, or wholly outside the domain —
    /// returns `Some(0.0)` rather than a clamped residue.
    pub fn estimate_selectivity(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> Option<f64> {
        if self.tree.is_empty() || self.lo > self.hi {
            return None;
        }
        // Unit step of the bound's domain: discrete values move in whole
        // units, a continuous (Double) endpoint has measure zero.
        let unit = |v: &Value| match v {
            Value::Double(_) => 0.0,
            _ => 1.0,
        };
        // Effective half-open interval [lo_eff, hi_eff) on the real line.
        let lo_eff = match lo {
            Bound::Included(v) => numeric(v)?,
            Bound::Excluded(v) => numeric(v)? + unit(v),
            Bound::Unbounded => self.lo,
        };
        let hi_eff = match hi {
            Bound::Included(v) => numeric(v)? + unit(v),
            Bound::Excluded(v) => numeric(v)?,
            Bound::Unbounded => self.hi + 1.0,
        };
        // Clip to the indexed domain, itself half-open: [min, max + 1).
        let clipped_lo = lo_eff.max(self.lo);
        let clipped_hi = hi_eff.min(self.hi + 1.0);
        if clipped_hi <= clipped_lo {
            return Some(0.0);
        }
        let span = (self.hi + 1.0 - self.lo).max(1.0);
        Some(((clipped_hi - clipped_lo) / span).clamp(0.0, 1.0))
    }
}

/// A GiST (R-Tree) index over the (application × system) period rectangles
/// of versions — System D's alternative index implementation (paper §2.5).
#[derive(Debug, Clone)]
pub struct GistIndex {
    /// Index name.
    pub name: String,
    tree: RTree<u64>,
}

/// Clamps a period endpoint onto the R-Tree's i64 coordinate space.
fn sys_coord(t: SysTime) -> i64 {
    if t == SysTime::MAX {
        i64::MAX - 1
    } else {
        t.0.min((i64::MAX - 1) as u64) as i64
    }
}

/// The rectangle of a version: x = application days, y = system time.
/// Half-open periods become inclusive coordinates by subtracting one from
/// the ends (saturating at the sentinels).
pub fn version_rect(version: &Version) -> Rect {
    let x_min = version.app.start.0.max(i64::MIN + 1);
    let x_max = if version.app.end.0 == i64::MAX {
        i64::MAX - 1
    } else {
        version.app.end.0 - 1
    };
    let y_min = sys_coord(version.sys.start);
    let y_max = if version.sys.end == SysTime::MAX {
        i64::MAX - 1
    } else {
        sys_coord(version.sys.end) - 1
    };
    Rect::new(x_min, x_max.max(x_min), y_min, y_max.max(y_min))
}

impl GistIndex {
    /// Creates an empty GiST index.
    pub fn new(name: impl Into<String>) -> GistIndex {
        GistIndex {
            name: name.into(),
            tree: RTree::new(),
        }
    }

    /// Indexes `version` under `slot`.
    pub fn insert(&mut self, version: &Version, slot: u64) {
        self.tree.insert(version_rect(version), slot);
    }

    /// Slots whose rectangle intersects the query window.
    pub fn probe(&self, query: &Rect) -> Vec<u64> {
        self.probe_counted(query, &mut 0)
    }

    /// Like [`GistIndex::probe`], but counts every R-Tree entry examined
    /// (internal and leaf) into `visits`.
    pub fn probe_counted(&self, query: &Rect, visits: &mut u64) -> Vec<u64> {
        let mut span = obs::span_dyn("index", || format!("gist_probe {}", self.name));
        let out = self.tree.search_counted(query, visits);
        span.arg_with("hits", || out.len().to_string());
        out
    }

    /// Estimated fraction of indexed rectangles intersecting `query` — the
    /// cost-model input that lets a GiST probe compete with (and lose to)
    /// a sequential scan on near-full-window queries, instead of being
    /// chosen unconditionally whenever the index exists.
    pub fn estimate_fraction(&self, query: &Rect) -> f64 {
        self.tree.estimate_fraction(query)
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitempo_core::{AppDate, AppPeriod, Row, SysPeriod};

    fn version(id: i64, app: (i64, i64), sys: (u64, Option<u64>)) -> Version {
        Version {
            row: Row::new(vec![Value::Int(id), Value::str("payload")]),
            app: AppPeriod::new(AppDate(app.0), AppDate(app.1)),
            sys: SysPeriod::new(SysTime(sys.0), sys.1.map_or(SysTime::MAX, SysTime)),
        }
    }

    #[test]
    fn ordered_index_insert_probe_remove() {
        let mut idx = OrderedIndex::new(IndexDef {
            name: "ix_id".into(),
            cols: vec![IndexedCol::Value(0)],
            kind: IndexKind::BTree,
        });
        for i in 0..100 {
            idx.insert(&version(i, (0, 10), (0, None)), i as u64);
        }
        assert_eq!(idx.len(), 100);
        let hits = idx.probe_range(
            Bound::Included(&Value::Int(10)),
            Bound::Excluded(&Value::Int(13)),
        );
        assert_eq!(hits, vec![10, 11, 12]);
        assert!(idx.remove(&version(10, (0, 10), (0, None)), 10));
        assert!(!idx.remove(&version(10, (0, 10), (0, None)), 10));
        let hits = idx.probe_range(
            Bound::Included(&Value::Int(10)),
            Bound::Included(&Value::Int(12)),
        );
        assert_eq!(hits, vec![11, 12]);
    }

    #[test]
    fn excluded_lower_bound() {
        let mut idx = OrderedIndex::new(IndexDef {
            name: "ix".into(),
            cols: vec![IndexedCol::Value(0)],
            kind: IndexKind::BTree,
        });
        for i in 0..5 {
            idx.insert(&version(i, (0, 10), (0, None)), i as u64);
        }
        let hits = idx.probe_range(Bound::Excluded(&Value::Int(2)), Bound::Unbounded);
        assert_eq!(hits, vec![3, 4]);
    }

    #[test]
    fn composite_prefix_probe() {
        let mut idx = OrderedIndex::new(IndexDef {
            name: "ix_key_time".into(),
            cols: vec![IndexedCol::Value(0), IndexedCol::SysStart],
            kind: IndexKind::BTree,
        });
        idx.insert(&version(7, (0, 10), (1, Some(5))), 100);
        idx.insert(&version(7, (0, 10), (5, None)), 101);
        idx.insert(&version(8, (0, 10), (2, None)), 200);
        let hits = idx.probe_prefix(&[Value::Int(7)]);
        assert_eq!(hits, vec![100, 101]);
        let hits = idx.probe_prefix(&[Value::Int(9)]);
        assert!(hits.is_empty());
    }

    #[test]
    fn time_index_probe() {
        let mut idx = OrderedIndex::new(IndexDef {
            name: "ix_sys_start".into(),
            cols: vec![IndexedCol::SysStart],
            kind: IndexKind::BTree,
        });
        for t in 0..50u64 {
            idx.insert(&version(t as i64, (0, 10), (t, None)), t);
        }
        // sys_start <= 3 → the first four versions.
        let hits = idx.probe_range(
            Bound::Unbounded,
            Bound::Included(&Value::SysTime(SysTime(3))),
        );
        assert_eq!(hits, vec![0, 1, 2, 3]);
    }

    #[test]
    fn selectivity_interpolation() {
        let mut idx = OrderedIndex::new(IndexDef {
            name: "ix".into(),
            cols: vec![IndexedCol::Value(0)],
            kind: IndexKind::BTree,
        });
        for i in 0..=100 {
            idx.insert(&version(i, (0, 10), (0, None)), i as u64);
        }
        let sel = idx
            .estimate_selectivity(
                Bound::Included(&Value::Int(0)),
                Bound::Included(&Value::Int(10)),
            )
            .unwrap();
        assert!((sel - 0.1).abs() < 0.02, "sel = {sel}");
        let sel = idx
            .estimate_selectivity(Bound::Unbounded, Bound::Unbounded)
            .unwrap();
        assert!(sel > 0.99);
        // Out-of-domain ranges clamp to zero.
        let sel = idx
            .estimate_selectivity(
                Bound::Included(&Value::Int(500)),
                Bound::Included(&Value::Int(600)),
            )
            .unwrap();
        assert_eq!(sel, 0.0);
        // Non-numeric bound: no estimate.
        assert!(idx
            .estimate_selectivity(Bound::Included(&Value::str("x")), Bound::Unbounded)
            .is_none());
    }

    #[test]
    fn selectivity_honours_bound_kinds_exactly() {
        let mut idx = OrderedIndex::new(IndexDef {
            name: "ix".into(),
            cols: vec![IndexedCol::Value(0)],
            kind: IndexKind::BTree,
        });
        // Domain 0..=99: a whole-unit grid, span exactly 100.
        for i in 0..100 {
            idx.insert(&version(i, (0, 10), (0, None)), i as u64);
        }
        let est = |lo: Bound<&Value>, hi: Bound<&Value>| idx.estimate_selectivity(lo, hi).unwrap();
        // [10, 19] covers 10 units of 100 — exactly 0.1.
        assert_eq!(
            est(
                Bound::Included(&Value::Int(10)),
                Bound::Included(&Value::Int(19)),
            ),
            0.1
        );
        // (9, 20) covers the same ten values.
        assert_eq!(
            est(
                Bound::Excluded(&Value::Int(9)),
                Bound::Excluded(&Value::Int(20)),
            ),
            0.1
        );
        // [10, 20) loses the upper endpoint relative to [10, 20].
        let half_open = est(
            Bound::Included(&Value::Int(10)),
            Bound::Excluded(&Value::Int(20)),
        );
        let closed = est(
            Bound::Included(&Value::Int(10)),
            Bound::Included(&Value::Int(20)),
        );
        assert_eq!(half_open, 0.1);
        assert_eq!(closed, 0.11);
        // A single-point closed range is one unit.
        assert_eq!(
            est(
                Bound::Included(&Value::Int(42)),
                Bound::Included(&Value::Int(42)),
            ),
            0.01
        );
    }

    #[test]
    fn selectivity_empty_ranges_are_exactly_zero() {
        let mut idx = OrderedIndex::new(IndexDef {
            name: "ix".into(),
            cols: vec![IndexedCol::Value(0)],
            kind: IndexKind::BTree,
        });
        for i in 0..100 {
            idx.insert(&version(i, (0, 10), (0, None)), i as u64);
        }
        let zero = [
            // [v, v) and (v, v] are empty by construction.
            (
                Bound::Included(Value::Int(10)),
                Bound::Excluded(Value::Int(10)),
            ),
            (
                Bound::Excluded(Value::Int(10)),
                Bound::Included(Value::Int(10)),
            ),
            // Inverted bounds.
            (
                Bound::Included(Value::Int(50)),
                Bound::Included(Value::Int(40)),
            ),
            // Entirely below / above the indexed domain.
            (
                Bound::Included(Value::Int(-90)),
                Bound::Included(Value::Int(-50)),
            ),
            (Bound::Excluded(Value::Int(99)), Bound::Unbounded),
        ];
        for (lo, hi) in &zero {
            let lo_ref = match lo {
                Bound::Included(v) => Bound::Included(v),
                Bound::Excluded(v) => Bound::Excluded(v),
                Bound::Unbounded => Bound::Unbounded,
            };
            let hi_ref = match hi {
                Bound::Included(v) => Bound::Included(v),
                Bound::Excluded(v) => Bound::Excluded(v),
                Bound::Unbounded => Bound::Unbounded,
            };
            assert_eq!(
                idx.estimate_selectivity(lo_ref, hi_ref),
                Some(0.0),
                "{lo:?}..{hi:?} is provably empty"
            );
        }
    }

    #[test]
    fn counted_probes_report_entries_examined() {
        let mut idx = OrderedIndex::new(IndexDef {
            name: "ix".into(),
            cols: vec![IndexedCol::Value(0)],
            kind: IndexKind::BTree,
        });
        for i in 0..100 {
            idx.insert(&version(i, (0, 10), (0, None)), i as u64);
        }
        let mut visits = 0;
        let hits = idx.probe_range_counted(
            Bound::Included(&Value::Int(10)),
            Bound::Excluded(&Value::Int(13)),
            &mut visits,
        );
        assert_eq!(hits, vec![10, 11, 12]);
        // Three hits plus the entry that terminated the walk.
        assert_eq!(visits, 4);
        let mut visits = 0;
        let hits = idx.probe_prefix_counted(&[Value::Int(7)], &mut visits);
        assert_eq!(hits, vec![7]);
        assert_eq!(visits, 2);
    }

    #[test]
    fn gist_index_rectangles() {
        let mut g = GistIndex::new("gist_periods");
        // Closed app period, closed sys period.
        g.insert(&version(1, (10, 20), (2, Some(5))), 1);
        // Open-ended both.
        g.insert(&version(2, (15, i64::MAX), (4, None)), 2);
        // Query: app day 12 at sys time 3.
        let q = Rect::point(12, 3);
        assert_eq!(g.probe(&q), vec![1]);
        // Query: app day 100 at sys time 100 — only the open version.
        let q = Rect::point(100, 100);
        assert_eq!(g.probe(&q), vec![2]);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn gist_probe_respects_half_open_boundaries() {
        let mut g = GistIndex::new("gist_b");
        // App period [10, 20), sys period [2, 5).
        g.insert(&version(1, (10, 20), (2, Some(5))), 1);

        // A version ending exactly at the query start must not match:
        // app query window starting at day 20 ([20, 20] after conversion).
        assert!(g.probe(&Rect::new(20, 20, 3, 3)).is_empty());
        // ... and the last contained day does.
        assert_eq!(g.probe(&Rect::new(19, 19, 3, 3)), vec![1]);
        // Same on the system axis: sys time 5 is outside [2, 5).
        assert!(g.probe(&Rect::new(12, 12, 5, 5)).is_empty());
        assert_eq!(g.probe(&Rect::new(12, 12, 4, 4)), vec![1]);

        // A query range ending exactly at the version start must not match
        // either: app range [5, 10) converts to [5, 9].
        assert!(g.probe(&Rect::new(5, 9, 3, 3)).is_empty());
        assert_eq!(g.probe(&Rect::new(5, 10, 3, 3)), vec![1]);
    }

    #[test]
    fn gist_probe_empty_query_range_matches_nothing() {
        let mut g = GistIndex::new("gist_e");
        g.insert(&version(1, (0, 100), (0, None)), 1);
        // An empty app range [15, 15) converts to the inverted [15, 14];
        // before Rect::is_empty gating this spuriously matched any version
        // straddling day 15.
        let q = Rect::new(15, 14, 0, i64::MAX - 1);
        assert!(q.is_empty());
        assert!(g.probe(&q).is_empty(), "empty period: no versions qualify");
    }

    #[test]
    fn version_rect_handles_sentinels() {
        let v = version(1, (0, i64::MAX), (0, None));
        let r = version_rect(&v);
        assert!(r.x_max >= 1_000_000);
        assert!(r.y_max >= 1_000_000);
        assert!(r.intersects(&Rect::point(5_000, 42)));
    }
}
