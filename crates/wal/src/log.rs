//! The transaction log writer: when appended bytes become durable.
//!
//! [`TxnWal`] frames payloads with `bitempo_storage::wal` and pushes them
//! into a [`WalSink`] under one of the three durability modes:
//!
//! * [`DurabilityMode::Strict`] — every append writes *and syncs* before
//!   returning; an acknowledged commit is durable.
//! * [`DurabilityMode::Batched`]`(N)` — appends enqueue without blocking; a
//!   flusher thread wakes roughly every `N` milliseconds, writes the
//!   accumulated batch and syncs it once — the classic group commit.
//!   [`TxnWal::sync`] is the barrier that waits for the flusher's
//!   acknowledgement.
//! * [`DurabilityMode::Async`] — appends only write; nothing is synced
//!   until an explicit [`TxnWal::sync`] or [`TxnWal::close`]. A crash may
//!   lose any suffix of acknowledged commits.
//!
//! The flusher paces itself with `Condvar::wait_timeout`, not wall-clock
//! reads — benchmark timing stays confined to the bench crate (TB001).

use crate::sink::WalSink;
use bitempo_core::{Error, Result};
use bitempo_storage::wal::{header_bytes, DurabilityMode, WalAppender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A write-ahead log of framed payloads under a durability mode.
///
/// One `TxnWal` per log stream, for its lifetime. Sequence numbers are the
/// dense 1-based record numbers assigned by the framing layer; the driver
/// appends exactly one record per committed transaction, so record `seq`
/// *is* the commit number.
pub struct TxnWal {
    mode: DurabilityMode,
    backend: Backend,
}

enum Backend {
    /// Strict and async modes: the sink sits behind a mutex shared with
    /// strict-mode durability waiters, so a committer can *submit* (write,
    /// no sync) inside its critical section and let the waiter perform the
    /// fsync after every lock is released.
    Direct {
        shared: Arc<DirectShared>,
        appender: WalAppender,
    },
    /// Batched mode: a flusher thread owns the sink.
    Batched(Batched),
}

/// The direct backend's sink and watermarks, shared between the appending
/// side and strict-mode [`DurabilityWaiter`]s.
struct DirectShared {
    /// The field is named `sink` (not `state`) so tblint's lock-order
    /// graph keys this mutex distinctly from the batched backend's
    /// `Shared.state` and the txn manager's `state` lock.
    sink: Mutex<DirectSink>,
}

struct DirectSink {
    sink: Box<dyn WalSink>,
    /// Highest sequence number written to the sink.
    written: u64,
    /// Highest sequence number synced to stable storage.
    durable: u64,
}

impl TxnWal {
    /// Creates a log on `sink`, writing the stream header immediately.
    pub fn create(mut sink: Box<dyn WalSink>, mode: DurabilityMode) -> Result<TxnWal> {
        sink.write_all(&header_bytes())?;
        let backend = match mode {
            DurabilityMode::Strict | DurabilityMode::Async => Backend::Direct {
                shared: Arc::new(DirectShared {
                    sink: Mutex::new(DirectSink {
                        sink,
                        written: 0,
                        durable: 0,
                    }),
                }),
                appender: WalAppender::new(),
            },
            DurabilityMode::Batched(ms) => Backend::Batched(Batched::spawn(sink, ms)),
        };
        Ok(TxnWal { mode, backend })
    }

    /// The configured durability mode.
    pub fn mode(&self) -> DurabilityMode {
        self.mode
    }

    /// Appends one payload as the next record, returning its sequence
    /// number. Under `Strict` the record is durable on return; under
    /// `Batched` it is merely *submitted* (watch [`TxnWal::durable_seq`]
    /// or call [`TxnWal::sync`]); under `Async` it is written, unsynced.
    ///
    /// Single-threaded drivers (replay, benchmarks) use this. Concurrent
    /// committers holding other locks should prefer [`TxnWal::submit`] +
    /// [`TxnWal::waiter`], which moves the strict fsync out of the caller's
    /// critical section.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        match &mut self.backend {
            Backend::Direct { shared, appender } => {
                let (seq, frame) = appender.encode(payload);
                let mut s = shared.sink.lock().expect("wal sink poisoned");
                s.sink.write_all(&frame)?;
                s.written = seq;
                if self.mode == DurabilityMode::Strict {
                    // tblint: allow(TB008) the sink mutex serializes the sink itself; strict append syncs under it by design
                    s.sink.sync()?;
                    s.durable = seq;
                }
                Ok(seq)
            }
            Backend::Batched(b) => b.enqueue(payload),
        }
    }

    /// Appends one payload *without* a durability wait: the frame is
    /// written (or enqueued, under `Batched`) and its sequence number
    /// returned, but nothing is synced. Pair with [`TxnWal::waiter`]: under
    /// `Strict` the returned waiter performs the sync — once, covering
    /// every record submitted so far — after the committer has dropped its
    /// locks, so the fsync latency never sits inside a lock-protected
    /// critical section.
    pub fn submit(&mut self, payload: &[u8]) -> Result<u64> {
        match &mut self.backend {
            Backend::Direct { shared, appender } => {
                let (seq, frame) = appender.encode(payload);
                let mut s = shared.sink.lock().expect("wal sink poisoned");
                s.sink.write_all(&frame)?;
                s.written = seq;
                Ok(seq)
            }
            Backend::Batched(b) => b.enqueue(payload),
        }
    }

    /// Highest sequence number known durable (synced to stable storage).
    pub fn durable_seq(&self) -> u64 {
        match &self.backend {
            Backend::Direct { shared, .. } => {
                shared.sink.lock().expect("wal sink poisoned").durable
            }
            Backend::Batched(b) => b.durable_seq(),
        }
    }

    /// Highest sequence number submitted so far.
    pub fn submitted_seq(&self) -> u64 {
        match &self.backend {
            Backend::Direct { shared, .. } => {
                shared.sink.lock().expect("wal sink poisoned").written
            }
            Backend::Batched(b) => b.submitted_seq(),
        }
    }

    /// Durability barrier: blocks until every submitted record is durable
    /// (or the sink has failed).
    pub fn sync(&mut self) -> Result<()> {
        match &mut self.backend {
            Backend::Direct { shared, .. } => {
                let mut s = shared.sink.lock().expect("wal sink poisoned");
                // tblint: allow(TB008) the sink mutex serializes the sink itself; the barrier syncs under it by design
                s.sink.sync()?;
                s.durable = s.written;
                Ok(())
            }
            Backend::Batched(b) => b.barrier(),
        }
    }

    /// A handle a committer can block on *after* releasing whatever lock
    /// serializes appends. Waiting for group commit inside the commit
    /// critical section would serialize the fsync latency across committers
    /// and defeat batching; the waiter carries just enough shared state to
    /// park outside all locks until a given sequence number is durable.
    pub fn waiter(&self) -> DurabilityWaiter {
        match &self.backend {
            Backend::Direct { shared, .. } => match self.mode {
                // Strict: a submitted record is not yet synced; the waiter
                // performs the deferred fsync (amortized across every
                // committer that submitted before it runs). Records that
                // went through `append` are already durable, so the waiter
                // short-circuits on the watermark.
                DurabilityMode::Strict => DurabilityWaiter(Waiter::StrictSync {
                    shared: Arc::clone(shared),
                }),
                // Async: no durability contract until an explicit sync —
                // nothing to wait for at commit time.
                _ => DurabilityWaiter(Waiter::Immediate),
            },
            Backend::Batched(b) => DurabilityWaiter(Waiter::Batched {
                shared: Arc::clone(&b.shared),
                interval: b.interval,
            }),
        }
    }

    /// Drains and closes the log, returning the highest durable sequence
    /// number. A sink failure anywhere before or during the drain surfaces
    /// here, with the watermark of what *did* survive available via the
    /// error-path test hooks (recovery scans the bytes, not the return).
    pub fn close(mut self) -> Result<u64> {
        match &mut self.backend {
            Backend::Direct { shared, .. } => {
                let mut s = shared.sink.lock().expect("wal sink poisoned");
                // tblint: allow(TB008) the sink mutex serializes the sink itself; the final drain syncs under it by design
                s.sink.sync()?;
                s.durable = s.written;
                Ok(s.durable)
            }
            Backend::Batched(b) => b.shutdown(),
        }
    }
}

/// A detached handle for awaiting durability of one appended record.
///
/// Cloned freely and used concurrently: many committers can park on the
/// same group-commit flusher at once, which is exactly what amortizes the
/// fsync (paper §2.4's commit-cost trade-off, now under concurrency).
#[derive(Clone)]
pub struct DurabilityWaiter(Waiter);

#[derive(Clone)]
enum Waiter {
    /// Async mode (no wait contract) — and strict `append`, whose records
    /// are durable before the waiter ever runs: return immediately.
    Immediate,
    /// Strict mode after [`TxnWal::submit`]: perform the deferred fsync if
    /// the target record is not durable yet. One waiter's sync covers every
    /// record written before it — concurrent strict committers get their
    /// fsyncs amortized exactly like group commit, without the flusher
    /// thread or its latency floor.
    StrictSync { shared: Arc<DirectShared> },
    /// Group commit: park on the flusher's ack condvar until the durable
    /// watermark passes the target sequence number.
    Batched {
        shared: Arc<Shared>,
        /// Re-check cadence while parked (the flusher's flush interval).
        interval: Duration,
    },
}

impl DurabilityWaiter {
    /// Blocks until record `seq` is durable under this log's mode. Under
    /// strict and async modes this is a no-op (strict records are durable
    /// on append-return; async promises nothing until an explicit sync).
    pub fn wait_for(&self, seq: u64) -> Result<()> {
        match &self.0 {
            Waiter::Immediate => Ok(()),
            Waiter::StrictSync { shared } => {
                let mut s = shared.sink.lock().expect("wal sink poisoned");
                if s.durable < seq {
                    // tblint: allow(TB008) the sink mutex serializes the sink itself; this is the deferred strict fsync, run outside caller locks
                    s.sink.sync()?;
                    s.durable = s.written;
                }
                Ok(())
            }
            Waiter::Batched { shared, interval } => {
                let mut st = shared.state.lock().expect("wal state poisoned");
                while st.durable < seq {
                    if let Some(e) = &st.error {
                        return Err(Error::Archive(format!("wal flusher failed: {e}")));
                    }
                    if st.shutdown {
                        return Err(Error::Archive(
                            "wal flusher shut down before the commit became durable".into(),
                        ));
                    }
                    st = shared
                        .ack
                        .wait_timeout(st, *interval)
                        .expect("wal state poisoned")
                        .0;
                }
                Ok(())
            }
        }
    }
}

/// Shared state between the submitting thread and the flusher.
#[derive(Debug)]
struct Shared {
    state: Mutex<State>,
    /// Signaled to wake the flusher early (barrier, shutdown).
    work: Condvar,
    /// Signaled by the flusher after each batch (durable watermark moved).
    ack: Condvar,
}

#[derive(Debug, Default)]
struct State {
    /// Encoded frames awaiting the next flush.
    buf: Vec<u8>,
    /// Highest sequence number enqueued.
    submitted: u64,
    /// Highest sequence number written + synced.
    durable: u64,
    /// First sink failure; the flusher stops consuming after it.
    error: Option<String>,
    shutdown: bool,
}

/// The group-commit backend: a flusher thread that coalesces submitted
/// frames and syncs them in batches.
struct Batched {
    shared: Arc<Shared>,
    appender: WalAppender,
    interval: Duration,
    handle: Option<JoinHandle<()>>,
}

impl Batched {
    fn spawn(mut sink: Box<dyn WalSink>, interval_ms: u32) -> Batched {
        let interval = Duration::from_millis(u64::from(interval_ms.max(1)));
        let shared = Arc::new(Shared {
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            ack: Condvar::new(),
        });
        let flusher_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("wal-flusher".into())
            .spawn(move || {
                loop {
                    // Sleep one group-commit interval (or until a barrier /
                    // shutdown pokes us), then flush whatever accumulated.
                    // Ordinary appends do NOT signal `work` — that is what
                    // makes commits coalesce instead of syncing one by one.
                    let (batch, target, stop) = {
                        let mut st = flusher_shared
                            .state
                            .lock()
                            .expect("wal flusher state poisoned");
                        if st.buf.is_empty() && !st.shutdown {
                            st = flusher_shared
                                .work
                                .wait_timeout(st, interval)
                                .expect("wal flusher state poisoned")
                                .0;
                        }
                        (std::mem::take(&mut st.buf), st.submitted, st.shutdown)
                    };
                    if !batch.is_empty() {
                        let res = sink.write_all(&batch).and_then(|()| sink.sync());
                        let mut st = flusher_shared
                            .state
                            .lock()
                            .expect("wal flusher state poisoned");
                        match res {
                            Ok(()) => st.durable = st.durable.max(target),
                            Err(e) => {
                                st.error.get_or_insert(e.to_string());
                                st.shutdown = true;
                            }
                        }
                        let failed = st.error.is_some();
                        drop(st);
                        flusher_shared.ack.notify_all();
                        if failed {
                            return;
                        }
                    } else if stop {
                        flusher_shared.ack.notify_all();
                        return;
                    }
                }
            })
            .expect("spawn wal flusher");
        Batched {
            shared,
            appender: WalAppender::new(),
            interval,
            handle: Some(handle),
        }
    }

    /// Non-blocking append: encodes the frame into the pending batch.
    /// (Named `enqueue` so the workspace-unique name `submit` belongs to
    /// [`TxnWal::submit`] for tblint's one-hop call resolution.)
    fn enqueue(&mut self, payload: &[u8]) -> Result<u64> {
        let (seq, frame) = self.appender.encode(payload);
        let mut st = self.shared.state.lock().expect("wal state poisoned");
        if let Some(e) = &st.error {
            return Err(Error::Archive(format!("wal flusher failed: {e}")));
        }
        st.buf.extend_from_slice(&frame);
        st.submitted = seq;
        Ok(seq)
    }

    fn durable_seq(&self) -> u64 {
        self.shared
            .state
            .lock()
            .expect("wal state poisoned")
            .durable
    }

    fn submitted_seq(&self) -> u64 {
        self.shared
            .state
            .lock()
            .expect("wal state poisoned")
            .submitted
    }

    /// Blocks until everything submitted is durable, or the flusher died.
    fn barrier(&mut self) -> Result<()> {
        let mut st = self.shared.state.lock().expect("wal state poisoned");
        let target = st.submitted;
        while st.durable < target {
            if let Some(e) = &st.error {
                return Err(Error::Archive(format!("wal flusher failed: {e}")));
            }
            let flusher_dead = self.handle.as_ref().is_none_or(JoinHandle::is_finished);
            if flusher_dead {
                return Err(Error::Archive(
                    "wal flusher exited before the barrier".into(),
                ));
            }
            self.shared.work.notify_one();
            st = self
                .shared
                .ack
                .wait_timeout(st, self.interval)
                .expect("wal state poisoned")
                .0;
        }
        Ok(())
    }

    /// Asks the flusher to drain and exit, then joins it.
    fn shutdown(&mut self) -> Result<u64> {
        {
            let mut st = self.shared.state.lock().expect("wal state poisoned");
            st.shutdown = true;
        }
        self.shared.work.notify_one();
        if let Some(handle) = self.handle.take() {
            // Keep poking until it exits: the flusher may be mid-sleep.
            while !handle.is_finished() {
                self.shared.work.notify_one();
                std::thread::yield_now();
            }
            handle
                .join()
                .map_err(|_| Error::Internal("wal flusher panicked".into()))?;
        }
        let st = self.shared.state.lock().expect("wal state poisoned");
        match &st.error {
            Some(e) => Err(Error::Archive(format!("wal flusher failed: {e}"))),
            None => Ok(st.durable),
        }
    }
}

impl Drop for Batched {
    fn drop(&mut self) {
        // Best-effort drain on drop; `close()` is the checked path.
        let _ = self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::SharedBuf;
    use bitempo_core::fault::{FaultKind, FaultPlan, FaultyWriter};
    use bitempo_storage::wal;

    /// A sink that counts `sync` calls, for asserting *when* fsyncs happen.
    struct CountingSink {
        inner: SharedBuf,
        syncs: std::sync::Arc<std::sync::atomic::AtomicUsize>,
    }

    impl std::io::Write for CountingSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.inner.write(buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.inner.flush()
        }
    }

    impl WalSink for CountingSink {
        fn sync(&mut self) -> std::io::Result<()> {
            self.syncs.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            self.inner.sync()
        }
    }

    #[test]
    fn submit_defers_the_strict_fsync_to_the_waiter() {
        let buf = SharedBuf::new();
        let syncs = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let sink = CountingSink {
            inner: buf.clone(),
            syncs: std::sync::Arc::clone(&syncs),
        };
        let mut w = TxnWal::create(Box::new(sink), DurabilityMode::Strict).unwrap();
        assert_eq!(w.submit(b"t1").unwrap(), 1);
        assert_eq!(w.submit(b"t2").unwrap(), 2);
        assert_eq!(
            syncs.load(std::sync::atomic::Ordering::SeqCst),
            0,
            "submit writes without syncing"
        );
        assert_eq!(w.durable_seq(), 0, "nothing promised before the waiter");
        let waiter = w.waiter();
        waiter.wait_for(2).unwrap();
        assert_eq!(
            syncs.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "one fsync covers the whole submitted group"
        );
        assert_eq!(w.durable_seq(), 2);
        waiter.wait_for(1).unwrap();
        assert_eq!(
            syncs.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "already-durable records do not re-sync"
        );
        assert_eq!(w.close().unwrap(), 2);
        let s = wal::scan(&buf.snapshot());
        assert!(s.is_clean());
        assert_eq!(s.last_seq(), 2);
    }

    #[test]
    fn strict_append_still_syncs_inline_so_the_waiter_is_free() {
        let buf = SharedBuf::new();
        let syncs = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let sink = CountingSink {
            inner: buf.clone(),
            syncs: std::sync::Arc::clone(&syncs),
        };
        let mut w = TxnWal::create(Box::new(sink), DurabilityMode::Strict).unwrap();
        assert_eq!(w.append(b"t1").unwrap(), 1);
        assert_eq!(syncs.load(std::sync::atomic::Ordering::SeqCst), 1);
        w.waiter().wait_for(1).unwrap();
        assert_eq!(
            syncs.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "the waiter sees the record already durable and does nothing"
        );
    }

    #[test]
    fn strict_mode_is_durable_per_append() {
        let buf = SharedBuf::new();
        let mut w = TxnWal::create(Box::new(buf.clone()), DurabilityMode::Strict).unwrap();
        assert_eq!(w.append(b"t1").unwrap(), 1);
        assert_eq!(w.durable_seq(), 1);
        assert_eq!(w.append(b"t2").unwrap(), 2);
        assert_eq!(w.durable_seq(), 2);
        assert_eq!(w.close().unwrap(), 2);
        let s = wal::scan(&buf.snapshot());
        assert!(s.is_clean());
        assert_eq!(s.last_seq(), 2);
    }

    #[test]
    fn async_mode_syncs_only_on_demand() {
        let buf = SharedBuf::new();
        let mut w = TxnWal::create(Box::new(buf.clone()), DurabilityMode::Async).unwrap();
        w.append(b"t1").unwrap();
        w.append(b"t2").unwrap();
        assert_eq!(w.durable_seq(), 0, "nothing promised yet");
        assert_eq!(w.submitted_seq(), 2);
        w.sync().unwrap();
        assert_eq!(w.durable_seq(), 2);
        w.append(b"t3").unwrap();
        assert_eq!(w.close().unwrap(), 3);
    }

    #[test]
    fn batched_mode_coalesces_and_acknowledges() {
        let buf = SharedBuf::new();
        let mut w = TxnWal::create(Box::new(buf.clone()), DurabilityMode::Batched(1)).unwrap();
        for i in 0..20u8 {
            w.append(&[i]).unwrap();
        }
        assert_eq!(w.submitted_seq(), 20);
        w.sync().unwrap();
        assert!(w.durable_seq() >= 20);
        assert_eq!(w.close().unwrap(), 20);
        let s = wal::scan(&buf.snapshot());
        assert!(s.is_clean(), "{:?}", s.torn);
        assert_eq!(s.records.len(), 20);
    }

    #[test]
    fn strict_append_surfaces_the_crash() {
        let buf = SharedBuf::new();
        let plan = FaultPlan::none().with(FaultKind::TruncateAt(40));
        let sink = FaultyWriter::new(buf.clone(), plan);
        let mut w = TxnWal::create(Box::new(sink), DurabilityMode::Strict).unwrap();
        let mut crashed_at = None;
        for i in 0..10u64 {
            if w.append(format!("txn-{i}").as_bytes()).is_err() {
                crashed_at = Some(i);
                break;
            }
        }
        let crashed_at = crashed_at.expect("the 40-byte cut must fire");
        // Everything acknowledged before the crash is recoverable.
        let s = wal::scan(&buf.snapshot());
        assert_eq!(s.last_seq(), crashed_at, "acknowledged appends survive");
        assert!(!s.is_clean(), "the torn tail is detected");
    }

    #[test]
    fn batched_mode_reports_the_failure_at_the_barrier() {
        let buf = SharedBuf::new();
        let plan = FaultPlan::none().with(FaultKind::TruncateAt(64));
        let sink = FaultyWriter::new(buf.clone(), plan);
        let mut w = TxnWal::create(Box::new(sink), DurabilityMode::Batched(1)).unwrap();
        for i in 0..50u64 {
            // Submission may start failing once the flusher has died.
            let _ = w.append(format!("txn-{i}").as_bytes());
        }
        assert!(w.close().is_err(), "the sink failure surfaces on close");
        let s = wal::scan(&buf.snapshot());
        assert!(s.last_seq() < 50, "the cut lost a suffix");
    }
}
