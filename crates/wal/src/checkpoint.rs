//! Engine checkpoints: a serialized snapshot of every table's versions.
//!
//! A checkpoint bounds recovery work: instead of replaying the whole
//! history, recovery loads the newest valid checkpoint and replays only
//! the WAL records after it. The snapshot is *logical* — table definitions
//! plus every [`Version`] as [`BitemporalEngine::snapshot_versions`]
//! reports them — so one format serves all four engine architectures, and
//! [`BitemporalEngine::restore`] rebuilds each engine's physical layout
//! from it.
//!
//! The byte format follows the archive-v2 discipline: magic + version,
//! a whole-body CRC-32 checked *before* parsing, and a bounded cursor so
//! a lying length prefix surfaces as [`Error::Archive`], never as an
//! over-allocation. Corrupt checkpoints are an expected input — recovery
//! falls back to the next-older one.

use bitempo_core::crc::crc32;
use bitempo_core::{
    AppDate, Column, DataType, Error, Period, Result, Row, Schema, SysTime, TableDef, TableId,
    TemporalClass, Value,
};
use bitempo_engine::{BitemporalEngine, Version};

/// Checkpoint blob magic.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"BICK";
/// Checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// A decoded checkpoint: the engine state as of WAL sequence number `seq`.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The WAL sequence number of the last transaction folded into this
    /// snapshot (0 = the initial load only).
    pub seq: u64,
    /// The engine's commit clock at snapshot time.
    pub now: SysTime,
    /// Per table, in creation order: definition plus every stored version.
    pub tables: Vec<(TableDef, Vec<Version>)>,
}

impl Checkpoint {
    /// Snapshots `engine` as of WAL sequence `seq`. Forces the engine's
    /// deferred reorganization first ([`BitemporalEngine::checkpoint`]) so
    /// staged state — System B's undo log, System C's delta — is folded in.
    pub fn capture(
        engine: &mut dyn BitemporalEngine,
        ids: &[TableId],
        seq: u64,
    ) -> Result<Checkpoint> {
        engine.checkpoint();
        let mut tables = Vec::with_capacity(ids.len());
        for &id in ids {
            tables.push((engine.table_def(id).clone(), engine.snapshot_versions(id)?));
        }
        Ok(Checkpoint {
            seq,
            now: engine.now(),
            tables,
        })
    }

    /// Serializes the checkpoint: `magic | version | crc32(body) | body`.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        put_u64(&mut body, self.seq);
        put_u64(&mut body, self.now.0);
        put_u32(&mut body, self.tables.len() as u32);
        for (def, versions) in &self.tables {
            put_str(&mut body, &def.name);
            put_u16(&mut body, def.schema.arity() as u16);
            for col in def.schema.columns() {
                put_str(&mut body, &col.name);
                body.push(dtype_tag(col.dtype));
            }
            put_u16(&mut body, def.key.len() as u16);
            for &k in &def.key {
                put_u16(&mut body, k as u16);
            }
            body.push(match def.temporal {
                TemporalClass::NonTemporal => 0,
                TemporalClass::Degenerate => 1,
                TemporalClass::Bitemporal => 2,
            });
            match &def.app_time_name {
                None => body.push(0),
                Some(n) => {
                    body.push(1);
                    put_str(&mut body, n);
                }
            }
            put_u64(&mut body, versions.len() as u64);
            for v in versions {
                put_u16(&mut body, v.row.arity() as u16);
                for val in v.row.values() {
                    put_value(&mut body, val);
                }
                put_u64(&mut body, v.app.start.0 as u64);
                put_u64(&mut body, v.app.end.0 as u64);
                put_u64(&mut body, v.sys.start.0);
                put_u64(&mut body, v.sys.end.0);
            }
        }
        let mut out = Vec::with_capacity(12 + body.len());
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Deserializes and validates a checkpoint blob. Any malformation —
    /// bad magic, checksum mismatch, lying length, trailing bytes — is
    /// [`Error::Archive`]; recovery treats that as "try the older one".
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint> {
        if bytes.len() < 12 {
            return Err(Error::Archive("checkpoint shorter than its header".into()));
        }
        if bytes[..4] != CHECKPOINT_MAGIC {
            return Err(Error::Archive("bad checkpoint magic".into()));
        }
        let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if version != CHECKPOINT_VERSION {
            return Err(Error::Archive(format!(
                "unsupported checkpoint version {version}"
            )));
        }
        let expect = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        let body = &bytes[12..];
        if crc32(body) != expect {
            return Err(Error::Archive("checkpoint checksum mismatch".into()));
        }
        let mut cur = Cur { b: body, pos: 0 };
        let seq = cur.u64("seq")?;
        let now = SysTime(cur.u64("now")?);
        let n_tables = cur.u32("table count")?;
        let mut tables = Vec::with_capacity(n_tables.min(64) as usize);
        for _ in 0..n_tables {
            let name = cur.string("table name")?;
            let n_cols = cur.u16("column count")?;
            let mut cols = Vec::with_capacity(usize::from(n_cols));
            for _ in 0..n_cols {
                let cname = cur.string("column name")?;
                cols.push(Column::new(cname, dtype_from(cur.u8("column type")?)?));
            }
            let n_key = cur.u16("key arity")?;
            let mut key = Vec::with_capacity(usize::from(n_key));
            for _ in 0..n_key {
                key.push(usize::from(cur.u16("key column")?));
            }
            let temporal = match cur.u8("temporal class")? {
                0 => TemporalClass::NonTemporal,
                1 => TemporalClass::Degenerate,
                2 => TemporalClass::Bitemporal,
                t => return Err(Error::Archive(format!("unknown temporal class {t}"))),
            };
            let app_time_name = match cur.u8("app-time tag")? {
                0 => None,
                1 => Some(cur.string("app-time name")?),
                t => return Err(Error::Archive(format!("bad option tag {t}"))),
            };
            let def = TableDef::new(
                name,
                Schema::new(cols),
                key,
                temporal,
                app_time_name.as_deref(),
            )?;
            let n_versions = cur.u64("version count")?;
            // A version occupies at least 18 bytes; pre-check the claim so
            // a hostile count cannot drive a huge reservation.
            if n_versions > (cur.remaining() as u64) / 18 {
                return Err(Error::Archive(format!(
                    "version count {n_versions} exceeds checkpoint size"
                )));
            }
            let mut versions = Vec::with_capacity(n_versions as usize);
            for _ in 0..n_versions {
                let arity = cur.u16("row arity")?;
                let mut vals = Vec::with_capacity(usize::from(arity));
                for _ in 0..arity {
                    vals.push(cur.value()?);
                }
                let app = Period {
                    start: AppDate(cur.u64("app start")? as i64),
                    end: AppDate(cur.u64("app end")? as i64),
                };
                let sys = Period {
                    start: SysTime(cur.u64("sys start")?),
                    end: SysTime(cur.u64("sys end")?),
                };
                versions.push(Version {
                    row: Row::new(vals),
                    app,
                    sys,
                });
            }
            tables.push((def, versions));
        }
        if cur.remaining() != 0 {
            return Err(Error::Archive(format!(
                "{} trailing bytes after checkpoint",
                cur.remaining()
            )));
        }
        Ok(Checkpoint { seq, now, tables })
    }

    /// Restores `engine` (fresh, no tables) to this checkpoint's state,
    /// returning the table ids in creation order.
    pub fn restore_into(&self, engine: &mut dyn BitemporalEngine) -> Result<Vec<TableId>> {
        let mut ids = Vec::with_capacity(self.tables.len());
        for (def, _) in &self.tables {
            ids.push(engine.create_table(def.clone())?);
        }
        for (&id, (_, versions)) in ids.iter().zip(&self.tables) {
            engine.restore(id, versions.clone(), self.now)?;
        }
        Ok(ids)
    }
}

fn dtype_tag(d: DataType) -> u8 {
    match d {
        DataType::Int => 0,
        DataType::Double => 1,
        DataType::Str => 2,
        DataType::Date => 3,
        DataType::SysTime => 4,
    }
}

fn dtype_from(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Int,
        1 => DataType::Double,
        2 => DataType::Str,
        3 => DataType::Date,
        4 => DataType::SysTime,
        t => return Err(Error::Archive(format!("unknown data type tag {t}"))),
    })
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            put_u64(out, *i as u64);
        }
        Value::Double(d) => {
            out.push(2);
            put_u64(out, d.to_bits());
        }
        Value::Str(s) => {
            out.push(3);
            put_str(out, s);
        }
        Value::Date(d) => {
            out.push(4);
            put_u64(out, d.0 as u64);
        }
        Value::SysTime(t) => {
            out.push(5);
            put_u64(out, t.0);
        }
    }
}

/// A bounded cursor over the checkpoint body: every read names what it is
/// reading, and a read past the end is an [`Error::Archive`], never a
/// panic or an allocation.
struct Cur<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn remaining(&self) -> usize {
        self.b.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.b.len())
            .ok_or_else(|| Error::Archive(format!("checkpoint truncated reading {what}")))?;
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16> {
        let s = self.take(2, what)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        let s = self.take(4, what)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        let s = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    fn string(&mut self, what: &str) -> Result<String> {
        let len = self.u32(what)? as usize;
        let s = self.take(len, what)?;
        String::from_utf8(s.to_vec())
            .map_err(|_| Error::Archive(format!("invalid utf-8 in {what}")))
    }

    fn value(&mut self) -> Result<Value> {
        Ok(match self.u8("value tag")? {
            0 => Value::Null,
            1 => Value::Int(self.u64("int value")? as i64),
            2 => Value::Double(f64::from_bits(self.u64("double value")?)),
            3 => Value::str(self.string("string value")?),
            4 => Value::Date(AppDate(self.u64("date value")? as i64)),
            5 => Value::SysTime(SysTime(self.u64("systime value")?)),
            t => return Err(Error::Archive(format!("unknown value tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitempo_core::{AppPeriod, Key, SysPeriod};
    use bitempo_engine::{build_engine, SystemKind};

    fn sample() -> Checkpoint {
        let def = TableDef::new(
            "t",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Str),
                Column::new("price", DataType::Double),
            ]),
            vec![0],
            TemporalClass::Bitemporal,
            Some("vt"),
        )
        .unwrap();
        let v1 = Version {
            row: Row::new(vec![
                Value::Int(1),
                Value::str("widget"),
                Value::Double(9.5),
            ]),
            app: Period::new(AppDate(10), AppDate::MAX),
            sys: SysPeriod::since(SysTime(1)),
        };
        let v2 = Version {
            row: Row::new(vec![Value::Int(2), Value::Null, Value::Double(-0.0)]),
            app: AppPeriod::ALL,
            sys: SysPeriod::new(SysTime(1), SysTime(3)),
        };
        Checkpoint {
            seq: 7,
            now: SysTime(9),
            tables: vec![(def, vec![v1, v2])],
        }
    }

    #[test]
    fn roundtrip() {
        let c = sample();
        let bytes = c.encode();
        let back = Checkpoint::decode(&bytes).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn every_corruption_is_detected() {
        let bytes = sample().encode();
        // Any single bit flip anywhere must be rejected (magic, version,
        // CRC, or body — the CRC covers the body, the header is validated).
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            assert!(
                Checkpoint::decode(&bad).is_err(),
                "flip at byte {pos} was accepted"
            );
        }
        // Truncation at every length is rejected, never a panic.
        for cut in 0..bytes.len() {
            assert!(Checkpoint::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Trailing garbage is rejected too.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(Checkpoint::decode(&padded).is_err());
    }

    #[test]
    fn capture_and_restore_round_trip_through_an_engine() {
        let mut eng = build_engine(SystemKind::A);
        let def = sample().tables[0].0.clone();
        let id = eng.create_table(def).unwrap();
        eng.insert(
            id,
            Row::new(vec![Value::Int(1), Value::str("a"), Value::Double(1.0)]),
            None,
        )
        .unwrap();
        eng.commit();
        eng.update(id, &Key::int(1), &[(2, Value::Double(2.0))], None)
            .unwrap();
        eng.commit();
        let ids = vec![id];
        let ck = Checkpoint::capture(eng.as_mut(), &ids, 2).unwrap();
        let bytes = ck.encode();
        let back = Checkpoint::decode(&bytes).unwrap();

        let mut fresh = build_engine(SystemKind::A);
        let new_ids = back.restore_into(fresh.as_mut()).unwrap();
        assert_eq!(new_ids.len(), 1);
        assert_eq!(fresh.now(), eng.now());
        let mut a = eng.snapshot_versions(id).unwrap();
        let mut b = fresh.snapshot_versions(new_ids[0]).unwrap();
        let key = |v: &Version| format!("{v:?}");
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }
}
