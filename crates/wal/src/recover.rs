//! Crash recovery: checkpoint + WAL tail = the uncrashed engine.
//!
//! [`durable_replay`] is the logging twin of the histgen loader: it replays
//! the generator archive one transaction per commit, appending each
//! transaction's archive-v2 body to a [`TxnWal`] *before* applying it, and
//! snapshots a [`Checkpoint`] every `checkpoint_every` commits. A sink
//! failure mid-run is a simulated crash: the driver stops and reports it,
//! leaving the torn log bytes as the only survivor.
//!
//! [`recover`] rebuilds from those survivors: it scans the WAL (keeping the
//! longest valid prefix, truncating at the first torn or corrupt record),
//! picks the newest checkpoint that still decodes (falling back past
//! corrupt ones), restores the engine from it, and replays the WAL records
//! after the checkpoint through [`bitempo_histgen::apply_op`] — the exact
//! dispatch of the original load. Tuning is re-applied afterwards, like a
//! cold load. The crash tests assert the result is query-equivalent to
//! [`oracle_replay`] of the same prefix on all five query classes.

use crate::checkpoint::Checkpoint;
use crate::log::TxnWal;
use crate::record::{decode_payload, WalPayload};
use bitempo_core::{Error, Result, SysTime, TableId};
use bitempo_dbgen::TpchData;
use bitempo_engine::{build_engine, BitemporalEngine, SystemKind, TuningConfig};
use bitempo_histgen::{apply_op, encode_txn, load_initial, Archive};
use bitempo_storage::wal;
use bitempo_storage::DurabilityMode;

/// Replay-with-logging options.
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// When appended commit records become durable.
    pub mode: DurabilityMode,
    /// Snapshot a checkpoint every this many commits (0 = only the
    /// checkpoint of the initial load). Recovery replays at most this many
    /// WAL records, so it bounds recovery time.
    pub checkpoint_every: u64,
}

impl Default for DurableOptions {
    /// Async logging, checkpoint every 64 commits.
    fn default() -> DurableOptions {
        DurableOptions {
            mode: DurabilityMode::Async,
            checkpoint_every: 64,
        }
    }
}

/// What a [`durable_replay`] run produced.
#[derive(Debug)]
pub struct DurableRun {
    /// Table ids in creation order.
    pub ids: Vec<TableId>,
    /// Transactions applied and committed (each one appended to the WAL
    /// before it was applied).
    pub commits: u64,
    /// Encoded checkpoints, oldest first. Index 0 is always the snapshot
    /// of the initial load (`seq` 0).
    pub checkpoints: Vec<Vec<u8>>,
    /// Highest WAL sequence number acknowledged durable at close.
    pub durable_seq: u64,
    /// `Some(reason)` if the WAL sink failed mid-run — the simulated
    /// crash. Commits stop at the failure; the engine state past the log
    /// is considered lost.
    pub crashed: Option<String>,
}

/// Replays `archive` against `engine` with write-ahead logging: for each
/// transaction, append its encoded body to `log`, apply its operations,
/// commit, and checkpoint on the configured cadence.
///
/// A WAL append failure stops the run (see [`DurableRun::crashed`]); any
/// other operation failure is a hard error — the archive is trusted input
/// here, and recovery must be able to assume zero skipped ops.
pub fn durable_replay(
    engine: &mut dyn BitemporalEngine,
    data: &TpchData,
    archive: &Archive,
    log: TxnWal,
    opts: &DurableOptions,
) -> Result<DurableRun> {
    let mut log = log;
    let ids = load_initial(engine, data)?;
    let mut checkpoints = vec![Checkpoint::capture(engine, &ids, 0)?.encode()];
    let mut commits = 0u64;
    let mut crashed = None;
    for txn in &archive.transactions {
        let payload = encode_txn(txn)?;
        // A checkpoint must be labelled with the exact WAL sequence number
        // it covers — the one the framing layer assigned, not a commit
        // counter kept on the side. In this single-threaded driver the two
        // coincide (asserted below), but recovery's "skip `rec.seq <=
        // ckpt.seq`" boundary is only safe if the label comes from the log
        // itself; a drifted counter would drop or double-replay the
        // transaction that straddles the checkpoint.
        let seq = match log.append(&payload) {
            Ok(seq) => seq,
            Err(e) => {
                crashed = Some(e.to_string());
                break;
            }
        };
        for op in &txn.ops {
            apply_op(engine, &ids, op)?;
        }
        engine.commit();
        commits += 1;
        debug_assert_eq!(seq, commits, "WAL seq diverged from the commit count");
        if opts.checkpoint_every > 0 && commits.is_multiple_of(opts.checkpoint_every) {
            checkpoints.push(Checkpoint::capture(engine, &ids, seq)?.encode());
        }
    }
    let durable_seq = match log.close() {
        Ok(d) => d,
        Err(e) => {
            // A failure surfacing at close (group commit) is the same
            // crash, detected later; keep the first reason we saw.
            crashed.get_or_insert(e.to_string());
            0
        }
    };
    Ok(DurableRun {
        ids,
        commits,
        checkpoints,
        durable_seq,
        crashed,
    })
}

/// How a recovery went: what was salvaged, from where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence number of the checkpoint recovery started from.
    pub checkpoint_seq: u64,
    /// Checkpoints that failed to decode and were skipped (newest first
    /// is tried first, so these were all newer than the one used).
    pub checkpoints_rejected: usize,
    /// Valid records found in the WAL prefix.
    pub wal_records: u64,
    /// Records actually replayed on top of the checkpoint.
    pub replayed: u64,
    /// Why the WAL tail was truncated, if it was ([`wal::WalScan::torn`]).
    pub torn: Option<String>,
    /// Byte length of the valid WAL prefix — the clean truncation point.
    pub wal_valid_len: u64,
    /// Committed transactions represented in the recovered state.
    pub commits: u64,
    /// `Some(reason)` if a structurally valid record failed to decode or
    /// apply: replay stopped at its boundary (state continuity past a
    /// skipped record would be fiction) and the recovered state covers
    /// only the records before it. Both log writers append a record only
    /// after (or while trusting that) its transaction applies, so this
    /// indicates corruption that slipped past the frame checksums.
    pub unreplayable: Option<String>,
    /// Prepares left undecided at the end of the valid prefix and
    /// therefore *presumed aborted* (not applied). A cluster recovery may
    /// still commit them from [`Recovered::pending`] when a sibling
    /// shard's WAL holds the commit decision.
    pub presumed_aborted: u64,
}

/// A prepared-but-undecided transaction salvaged from the WAL tail: its
/// full op payload, as durable as the prepare record that carried it.
#[derive(Debug, Clone)]
pub struct PendingPrepare {
    /// Global transaction id.
    pub gid: u64,
    /// Oracle commit timestamp the transaction would land at.
    pub gts: u64,
    /// The prepared ops.
    pub txn: bitempo_histgen::Transaction,
}

/// A recovered engine with its table ids and the recovery accounting.
pub struct Recovered {
    /// The rebuilt engine, tuned and checkpointed.
    pub engine: Box<dyn BitemporalEngine>,
    /// Table ids in creation order (same order as the original run).
    pub ids: Vec<TableId>,
    /// What was salvaged.
    pub report: RecoveryReport,
    /// Undecided prepares, presumed aborted locally. The sharded cluster's
    /// recovery resolves them against every shard's decisions: a commit
    /// decision found anywhere commits the prepare here too.
    pub pending: Vec<PendingPrepare>,
    /// Gids of *commit* decisions present in this WAL's valid prefix —
    /// the evidence cluster recovery unions across shards.
    pub decided_commits: Vec<u64>,
}

/// Rebuilds an engine of `kind` from the newest valid checkpoint in
/// `checkpoints` plus the valid prefix of `wal_bytes`, then re-applies
/// `tuning` exactly as the bench runner does after a cold load.
///
/// Corruption is handled, not propagated: a torn WAL tail is truncated at
/// the last clean record boundary, a corrupt checkpoint falls back to the
/// next older one, and a record that fails to decode or apply truncates
/// replay at its boundary ([`RecoveryReport::unreplayable`]) instead of
/// failing the whole recovery. Only a *total* loss — no decodable
/// checkpoint at all — is an error.
pub fn recover(
    kind: SystemKind,
    wal_bytes: &[u8],
    checkpoints: &[Vec<u8>],
    tuning: &TuningConfig,
) -> Result<Recovered> {
    let scan = wal::scan(wal_bytes);
    let mut rejected = 0;
    let mut chosen = None;
    for encoded in checkpoints.iter().rev() {
        match Checkpoint::decode(encoded) {
            Ok(c) => {
                chosen = Some(c);
                break;
            }
            Err(_) => rejected += 1,
        }
    }
    let ckpt = chosen.ok_or_else(|| {
        Error::Archive(format!(
            "recovery found no valid checkpoint among {}",
            checkpoints.len()
        ))
    })?;
    // Decode every record past the checkpoint before touching the engine:
    // a record that fails to decode truncates replay at its boundary
    // (reported, not propagated — the same philosophy as the torn-tail
    // scan), and decode failures caught here can never leave partial
    // pending state behind.
    let mut items: Vec<(u64, WalPayload)> = Vec::new();
    let mut unreplayable = None;
    for rec in &scan.records {
        if rec.seq <= ckpt.seq {
            continue;
        }
        match decode_payload(&rec.payload) {
            Ok(p) => items.push((rec.seq, p)),
            Err(e) => {
                unreplayable = Some(format!("record {} failed to decode: {e}", rec.seq));
                break;
            }
        }
    }
    // Commit decisions anywhere in the valid prefix: cluster recovery
    // unions these across shards to resolve sibling prepares.
    let decided_commits: Vec<u64> = items
        .iter()
        .filter_map(|(_, p)| match p {
            WalPayload::Decision {
                gid, commit: true, ..
            } => Some(*gid),
            _ => None,
        })
        .collect();
    let mut engine = build_engine(kind);
    let ids = ckpt.restore_into(engine.as_mut())?;
    let (replayed, pending) = match replay_items(engine.as_mut(), &ids, &items) {
        Ok(done) => done,
        Err((idx, e)) => {
            // The failing record left partial pending state; rebuild from
            // the checkpoint and replay only the known-good prefix (those
            // records are deterministic and already applied once).
            unreplayable = Some(format!("record {} failed to apply: {e}", items[idx].0));
            engine = build_engine(kind);
            let restored = ckpt.restore_into(engine.as_mut())?;
            debug_assert_eq!(restored, ids, "checkpoint restore must be deterministic");
            replay_items(engine.as_mut(), &ids, &items[..idx]).map_err(|(_, e)| e)?
        }
    };
    engine.apply_tuning(tuning)?;
    engine.checkpoint();
    // Record seqs are dense and 1-based, so for a pure commit-record log
    // (every WAL PR 7 writes) the recovered state covers exactly the
    // checkpoint plus every replayed record. Shard WALs interleave
    // prepare/decision records, so their commit accounting lives with the
    // cluster, not here.
    let commits = ckpt.seq + replayed;
    Ok(Recovered {
        engine,
        ids,
        report: RecoveryReport {
            checkpoint_seq: ckpt.seq,
            checkpoints_rejected: rejected,
            wal_records: scan.records.len() as u64,
            replayed,
            torn: scan.torn,
            wal_valid_len: scan.valid_len,
            commits,
            unreplayable,
            presumed_aborted: pending.len() as u64,
        },
        pending,
        decided_commits,
    })
}

/// Replays decoded records in order: commits apply and land (at their
/// carried `gts` when stamped), prepares stash, decisions resolve their
/// stash entry. Returns the number of commits applied plus the prepares
/// still undecided at the end (presumed aborted). On an apply failure the
/// engine holds partial state; the caller rebuilds and replays the prefix
/// before the failing index.
fn replay_items(
    engine: &mut dyn BitemporalEngine,
    ids: &[TableId],
    items: &[(u64, WalPayload)],
) -> std::result::Result<(u64, Vec<PendingPrepare>), (usize, Error)> {
    let mut replayed = 0u64;
    let mut stash: Vec<PendingPrepare> = Vec::new();
    for (idx, (_, item)) in items.iter().enumerate() {
        match item {
            WalPayload::Commit { gts, txn } => {
                if let Some(g) = gts {
                    engine.advance_clock(SysTime(g.saturating_sub(1)));
                }
                for op in &txn.ops {
                    apply_op(engine, ids, op).map_err(|e| (idx, e))?;
                }
                engine.commit();
                replayed += 1;
            }
            WalPayload::Prepare { gid, gts, txn } => {
                stash.push(PendingPrepare {
                    gid: *gid,
                    gts: *gts,
                    txn: txn.clone(),
                });
            }
            WalPayload::Decision { gid, gts, commit } => {
                let pos = stash.iter().position(|p| p.gid == *gid);
                match (pos, commit) {
                    (Some(pos), true) => {
                        let p = stash.remove(pos);
                        engine.advance_clock(SysTime(gts.saturating_sub(1)));
                        for op in &p.txn.ops {
                            apply_op(engine, ids, op).map_err(|e| (idx, e))?;
                        }
                        engine.commit();
                        replayed += 1;
                    }
                    (Some(pos), false) => {
                        stash.remove(pos);
                    }
                    (None, true) => {
                        // A decision always lands right after its prepare
                        // on the same shard (the gate excludes anything in
                        // between), so an orphaned commit decision means
                        // the log lies — truncate here, like any other
                        // unreplayable record.
                        return Err((
                            idx,
                            Error::Archive(format!("commit decision for unknown prepare {gid}")),
                        ));
                    }
                    // An abort for a prepare the checkpoint already covers
                    // (label advanced past the prepare) decides nothing.
                    (None, false) => {}
                }
            }
        }
    }
    Ok((replayed, stash))
}

/// The uncrashed oracle: replays the first `commits` transactions of
/// `archive` with the same commit cadence as [`durable_replay`] (including
/// the physical-checkpoint calls on the same boundaries), then applies
/// `tuning`. Recovery must be equivalent to this.
pub fn oracle_replay(
    kind: SystemKind,
    data: &TpchData,
    archive: &Archive,
    commits: u64,
    opts: &DurableOptions,
    tuning: &TuningConfig,
) -> Result<(Box<dyn BitemporalEngine>, Vec<TableId>)> {
    let mut engine = build_engine(kind);
    let ids = load_initial(engine.as_mut(), data)?;
    engine.checkpoint();
    for (i, txn) in archive.transactions.iter().enumerate() {
        if i as u64 >= commits {
            break;
        }
        for op in &txn.ops {
            apply_op(engine.as_mut(), &ids, op)?;
        }
        engine.commit();
        let done = i as u64 + 1;
        if opts.checkpoint_every > 0 && done.is_multiple_of(opts.checkpoint_every) {
            engine.checkpoint();
        }
    }
    engine.apply_tuning(tuning)?;
    engine.checkpoint();
    Ok((engine, ids))
}

/// A canonical, order-independent rendering of an engine's entire logical
/// state: every table's versions, sorted. Two engines of the same kind
/// are state-equivalent iff these match — the strongest equivalence the
/// crash tests assert, on top of the per-query-class checks.
pub fn canonical_state(engine: &dyn BitemporalEngine, ids: &[TableId]) -> Result<Vec<String>> {
    let mut out = Vec::new();
    for &id in ids {
        let name = engine.table_def(id).name.clone();
        let mut lines: Vec<String> = engine
            .snapshot_versions(id)?
            .iter()
            .map(|v| format!("{name}|{v:?}"))
            .collect();
        lines.sort();
        out.extend(lines);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::SharedBuf;
    use bitempo_core::fault::{FaultKind, FaultPlan, FaultyWriter};
    use bitempo_dbgen::ScaleConfig;
    use bitempo_histgen::{generate_history, HistoryConfig};

    fn tiny_world() -> (TpchData, Archive) {
        let data = bitempo_dbgen::generate(&ScaleConfig {
            h: 0.0004,
            seed: 0xD00D,
        });
        let hist = generate_history(
            &data,
            &HistoryConfig {
                m: 0.00012, // 120 scenario transactions
                seed: 0xFACE,
                scenarios_per_day: 4,
            },
        );
        (data, hist.archive)
    }

    #[test]
    fn clean_run_recovers_identically() {
        let (data, archive) = tiny_world();
        let opts = DurableOptions {
            mode: DurabilityMode::Strict,
            checkpoint_every: 50,
        };
        let tuning = TuningConfig::none().with_workers(1);
        let buf = SharedBuf::new();
        let mut engine = build_engine(SystemKind::A);
        let log = TxnWal::create(Box::new(buf.clone()), opts.mode).unwrap();
        let run = durable_replay(engine.as_mut(), &data, &archive, log, &opts).unwrap();
        assert!(run.crashed.is_none());
        assert_eq!(run.commits, archive.transactions.len() as u64);
        assert_eq!(run.durable_seq, run.commits);
        assert_eq!(run.checkpoints.len(), 1 + (run.commits / 50) as usize);

        let rec = recover(SystemKind::A, &buf.snapshot(), &run.checkpoints, &tuning).unwrap();
        assert!(rec.report.torn.is_none());
        assert_eq!(rec.report.commits, run.commits);
        assert!(rec.report.checkpoint_seq >= 50, "used a late checkpoint");
        assert_eq!(
            canonical_state(rec.engine.as_ref(), &rec.ids).unwrap(),
            canonical_state(engine.as_ref(), &run.ids).unwrap()
        );
    }

    #[test]
    fn crash_mid_stream_recovers_the_prefix() {
        let (data, archive) = tiny_world();
        let opts = DurableOptions {
            mode: DurabilityMode::Strict,
            checkpoint_every: 32,
        };
        let tuning = TuningConfig::none().with_workers(1);

        // Dry run to size the log, then cut it at two thirds.
        let dry = SharedBuf::new();
        let mut scratch = build_engine(SystemKind::A);
        let log = TxnWal::create(Box::new(dry.clone()), opts.mode).unwrap();
        durable_replay(scratch.as_mut(), &data, &archive, log, &opts).unwrap();
        let cut = (dry.len() as u64) * 2 / 3;

        let buf = SharedBuf::new();
        let sink = FaultyWriter::new(
            buf.clone(),
            FaultPlan::none().with(FaultKind::TruncateAt(cut)),
        );
        let mut engine = build_engine(SystemKind::A);
        let log = TxnWal::create(Box::new(sink), opts.mode).unwrap();
        let run = durable_replay(engine.as_mut(), &data, &archive, log, &opts).unwrap();
        assert!(run.crashed.is_some(), "the cut must fire");
        assert!(run.commits < archive.transactions.len() as u64);

        let rec = recover(SystemKind::A, &buf.snapshot(), &run.checkpoints, &tuning).unwrap();
        // Strict mode: every acknowledged commit must be recovered.
        assert_eq!(rec.report.commits, run.commits);
        let (oracle, oracle_ids) = oracle_replay(
            SystemKind::A,
            &data,
            &archive,
            rec.report.commits,
            &opts,
            &tuning,
        )
        .unwrap();
        assert_eq!(
            canonical_state(rec.engine.as_ref(), &rec.ids).unwrap(),
            canonical_state(oracle.as_ref(), &oracle_ids).unwrap()
        );
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_to_an_older_one() {
        let (data, archive) = tiny_world();
        let opts = DurableOptions {
            mode: DurabilityMode::Async,
            checkpoint_every: 40,
        };
        let tuning = TuningConfig::none().with_workers(1);
        let buf = SharedBuf::new();
        let mut engine = build_engine(SystemKind::A);
        let log = TxnWal::create(Box::new(buf.clone()), opts.mode).unwrap();
        let run = durable_replay(engine.as_mut(), &data, &archive, log, &opts).unwrap();
        assert!(run.checkpoints.len() >= 3, "need checkpoints to corrupt");

        let mut checkpoints = run.checkpoints.clone();
        let last = checkpoints.len() - 1;
        let mid = checkpoints[last].len() / 2;
        checkpoints[last][mid] ^= 0xFF;

        let rec = recover(SystemKind::A, &buf.snapshot(), &checkpoints, &tuning).unwrap();
        assert_eq!(rec.report.checkpoints_rejected, 1);
        assert_eq!(rec.report.commits, run.commits, "the WAL covers the gap");
        assert_eq!(
            canonical_state(rec.engine.as_ref(), &rec.ids).unwrap(),
            canonical_state(engine.as_ref(), &run.ids).unwrap()
        );
    }

    /// Byte offset of the exact frame boundary after record `k` of a clean
    /// run's WAL bytes. Frames are deterministic given the payload
    /// sequence, so re-encoding the scanned payloads reproduces the sizes.
    fn boundary_after(clean_wal: &[u8], k: usize) -> u64 {
        let scan = wal::scan(clean_wal);
        assert!(scan.is_clean() && scan.records.len() > k);
        let mut appender = wal::WalAppender::new();
        let mut off = wal::header_bytes().len() as u64;
        for rec in &scan.records[..k] {
            let (_, frame) = appender.encode(&rec.payload);
            off += frame.len() as u64;
        }
        off
    }

    /// The checkpoint/WAL boundary: a crash *exactly* at the frame boundary
    /// after the checkpointed commit must recover precisely that commit
    /// count — the checkpointed transaction is neither dropped (off-by-one
    /// toward the past) nor replayed twice (checkpoint label drifting below
    /// the WAL seq it actually covers).
    #[test]
    fn crash_exactly_on_the_checkpoint_boundary() {
        let (data, archive) = tiny_world();
        let opts = DurableOptions {
            mode: DurabilityMode::Strict,
            checkpoint_every: 32,
        };
        let tuning = TuningConfig::none().with_workers(1);

        let dry = SharedBuf::new();
        let mut scratch = build_engine(SystemKind::A);
        let log = TxnWal::create(Box::new(dry.clone()), opts.mode).unwrap();
        durable_replay(scratch.as_mut(), &data, &archive, log, &opts).unwrap();

        // Cut at the boundary right after record 32 — the same commit the
        // cadence checkpoints — and two frames into record 33 (torn tail).
        for extra in [0u64, 2] {
            let cut = boundary_after(&dry.snapshot(), 32) + extra;
            let buf = SharedBuf::new();
            let sink = FaultyWriter::new(
                buf.clone(),
                FaultPlan::none().with(FaultKind::TruncateAt(cut)),
            );
            let mut engine = build_engine(SystemKind::A);
            let log = TxnWal::create(Box::new(sink), opts.mode).unwrap();
            let run = durable_replay(engine.as_mut(), &data, &archive, log, &opts).unwrap();
            assert!(run.crashed.is_some());
            assert_eq!(run.commits, 32, "strict mode stops at the cut");

            let rec = recover(SystemKind::A, &buf.snapshot(), &run.checkpoints, &tuning).unwrap();
            assert_eq!(rec.report.checkpoint_seq, 32, "newest checkpoint wins");
            assert_eq!(rec.report.replayed, 0, "nothing may be replayed twice");
            assert_eq!(rec.report.commits, 32, "nothing may be dropped");
            let (oracle, oracle_ids) =
                oracle_replay(SystemKind::A, &data, &archive, 32, &opts, &tuning).unwrap();
            assert_eq!(
                canonical_state(rec.engine.as_ref(), &rec.ids).unwrap(),
                canonical_state(oracle.as_ref(), &oracle_ids).unwrap()
            );
        }
    }

    /// A crash a few commits past a checkpoint replays exactly the records
    /// after the checkpoint's recorded seq — the straddling transaction is
    /// covered by the checkpoint, not double-applied from the WAL.
    #[test]
    fn recovery_replays_only_records_past_the_checkpoint_seq() {
        let (data, archive) = tiny_world();
        let opts = DurableOptions {
            mode: DurabilityMode::Strict,
            checkpoint_every: 32,
        };
        let tuning = TuningConfig::none().with_workers(1);

        let dry = SharedBuf::new();
        let mut scratch = build_engine(SystemKind::A);
        let log = TxnWal::create(Box::new(dry.clone()), opts.mode).unwrap();
        durable_replay(scratch.as_mut(), &data, &archive, log, &opts).unwrap();

        let cut = boundary_after(&dry.snapshot(), 35);
        let buf = SharedBuf::new();
        let sink = FaultyWriter::new(
            buf.clone(),
            FaultPlan::none().with(FaultKind::TruncateAt(cut)),
        );
        let mut engine = build_engine(SystemKind::A);
        let log = TxnWal::create(Box::new(sink), opts.mode).unwrap();
        let run = durable_replay(engine.as_mut(), &data, &archive, log, &opts).unwrap();
        assert_eq!(run.commits, 35);

        let rec = recover(SystemKind::A, &buf.snapshot(), &run.checkpoints, &tuning).unwrap();
        assert_eq!(rec.report.checkpoint_seq, 32);
        assert_eq!(rec.report.replayed, 3, "records 33..=35, each exactly once");
        assert_eq!(rec.report.commits, 35);
        let (oracle, oracle_ids) =
            oracle_replay(SystemKind::A, &data, &archive, 35, &opts, &tuning).unwrap();
        assert_eq!(
            canonical_state(rec.engine.as_ref(), &rec.ids).unwrap(),
            canonical_state(oracle.as_ref(), &oracle_ids).unwrap()
        );
    }

    /// A structurally valid record whose transaction cannot apply (here:
    /// an overwrite of a key the state never held) must truncate replay at
    /// its boundary — everything before it recovers, nothing after it is
    /// half-applied, and the report says why — instead of failing the
    /// whole recovery and taking every previously committed transaction
    /// down with it.
    #[test]
    fn unreplayable_record_truncates_replay_instead_of_failing() {
        use bitempo_core::{AppDate, Key, Period};
        use bitempo_engine::testutil::{bitemp_table, simple_row};
        use bitempo_histgen::{Op, Transaction};

        let mut engine = build_engine(SystemKind::A);
        let t = engine.create_table(bitemp_table("t")).unwrap();
        engine.insert(t, simple_row(1, 10), None).unwrap();
        engine.commit();
        let ids = vec![t];
        let base = Checkpoint::capture(engine.as_mut(), &ids, 0)
            .unwrap()
            .encode();

        let insert = |id: i64| Transaction {
            scenarios: Vec::new(),
            ops: vec![Op::Insert {
                table: 0,
                row: simple_row(id, id * 10),
                app: None,
            }],
        };
        let poison = Transaction {
            scenarios: Vec::new(),
            ops: vec![Op::OverwriteApp {
                table: 0,
                key: Key::int(i64::MAX),
                period: Period::new(AppDate(0), AppDate::MAX),
            }],
        };
        let buf = SharedBuf::new();
        let mut log = TxnWal::create(Box::new(buf.clone()), DurabilityMode::Strict).unwrap();
        log.append(&encode_txn(&insert(2)).unwrap()).unwrap();
        log.append(&encode_txn(&poison).unwrap()).unwrap();
        log.append(&encode_txn(&insert(3)).unwrap()).unwrap();
        log.close().unwrap();

        let rec = recover(
            SystemKind::A,
            &buf.snapshot(),
            &[base],
            &TuningConfig::none(),
        )
        .unwrap();
        assert_eq!(rec.report.replayed, 1, "only the good prefix replays");
        assert_eq!(rec.report.commits, 1);
        let reason = rec.report.unreplayable.as_deref().unwrap();
        assert!(reason.contains("record 2"), "got: {reason}");
        // The recovered state is exactly the prefix: rows 1 and 2, no
        // partial residue of the poisoned record, nothing after it.
        use bitempo_engine::api::{AppSpec, SysSpec};
        let rows = rec
            .engine
            .scan(rec.ids[0], &SysSpec::Current, &AppSpec::All, &[])
            .unwrap()
            .rows;
        let mut keys: Vec<i64> = rows
            .iter()
            .map(|r| match r.get(0) {
                bitempo_core::Value::Int(i) => *i,
                other => panic!("unexpected key {other:?}"),
            })
            .collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 2]);
    }

    #[test]
    fn no_valid_checkpoint_is_a_hard_error() {
        let res = recover(
            SystemKind::A,
            &wal::header_bytes(),
            &[vec![1, 2, 3]],
            &TuningConfig::none(),
        );
        match res {
            Err(Error::Archive(_)) => {}
            Err(other) => panic!("wrong error kind: {other}"),
            Ok(_) => panic!("recovery without a checkpoint must fail"),
        }
    }
}
