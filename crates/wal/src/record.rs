//! Record-kind envelope for two-phase-commit WAL payloads.
//!
//! PR 7's WAL records are raw archive-v2 transaction bodies: one record =
//! one committed, fully applied transaction. The sharded serving layer
//! needs two more kinds — a *prepare* (the full op payload made durable
//! before anything applies) and a *decision* (commit or abort of a
//! prepared transaction) — plus commit records stamped with the cluster
//! oracle's global timestamp so recovery re-lands every shard's commits at
//! exactly the timestamps the live run used.
//!
//! The envelope is backward compatible by construction: new kinds start
//! with [`RECORD_MAGIC`], whose leading bytes decode as an archive-v2
//! scenario count of `0x3242` (12 866) — orders of magnitude beyond what
//! any generated history carries, and the serving layer always encodes
//! zero scenarios (leading bytes `00 00`). A payload without the magic is
//! decoded as a legacy committed body, so every pre-existing WAL replays
//! unchanged through [`decode_payload`].
//!
//! Wire layout after the 4-byte magic:
//!
//! | kind | byte | body |
//! |------|------|------|
//! | commit-at | `1` | `gts: u64 LE`, then the archive-v2 txn body |
//! | prepare | `2` | `gid: u64`, `gts: u64`, then the txn body |
//! | decision | `3` | `gid: u64`, `gts: u64`, `commit: u8` (1/0) |
//!
//! `gid` is the global transaction id; the serving layer uses the oracle
//! timestamp itself (unique, monotonic), carried in both the prepare and
//! its decision so recovery can match them up across a crash.

use bitempo_core::{Error, Result};
use bitempo_histgen::{decode_txn, encode_txn, Transaction as TxnOps};

/// Leading bytes of every enveloped (non-legacy) record payload.
pub const RECORD_MAGIC: [u8; 4] = *b"B2PC";

const KIND_COMMIT_AT: u8 = 1;
const KIND_PREPARE: u8 = 2;
const KIND_DECISION: u8 = 3;

/// A decoded WAL record payload, legacy or enveloped.
#[derive(Debug, Clone, PartialEq)]
pub enum WalPayload {
    /// A committed, fully applied transaction. `gts` is `None` for legacy
    /// raw bodies (replay stamps them with the engine's own next commit
    /// time) and `Some` for cluster commits (replay re-lands them at
    /// exactly that oracle timestamp).
    Commit {
        /// Oracle commit timestamp, if the record carries one.
        gts: Option<u64>,
        /// The transaction body.
        txn: TxnOps,
    },
    /// Phase one of a cross-shard commit: the full op payload, durable
    /// *before* anything applies. Undecided prepares are presumed aborted.
    Prepare {
        /// Global transaction id.
        gid: u64,
        /// Oracle commit timestamp the transaction will land at.
        gts: u64,
        /// The transaction body.
        txn: TxnOps,
    },
    /// Phase two: the coordinator's verdict on a prepared transaction.
    Decision {
        /// Global transaction id this decides.
        gid: u64,
        /// Oracle commit timestamp of the decided transaction.
        gts: u64,
        /// `true` commits the prepared ops; `false` discards them.
        commit: bool,
    },
}

/// Encodes a committed transaction stamped with its oracle timestamp.
pub fn encode_committed_at(gts: u64, txn: &TxnOps) -> Result<Vec<u8>> {
    let body = encode_txn(txn)?;
    let mut out = Vec::with_capacity(RECORD_MAGIC.len() + 9 + body.len());
    out.extend_from_slice(&RECORD_MAGIC);
    out.push(KIND_COMMIT_AT);
    out.extend_from_slice(&gts.to_le_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

/// Encodes a prepare record: `txn` tagged with its global id and oracle
/// commit timestamp.
pub fn encode_prepare(gid: u64, gts: u64, txn: &TxnOps) -> Result<Vec<u8>> {
    let body = encode_txn(txn)?;
    let mut out = Vec::with_capacity(RECORD_MAGIC.len() + 17 + body.len());
    out.extend_from_slice(&RECORD_MAGIC);
    out.push(KIND_PREPARE);
    out.extend_from_slice(&gid.to_le_bytes());
    out.extend_from_slice(&gts.to_le_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

/// Encodes a decision record for the prepared transaction `gid`.
pub fn encode_decision(gid: u64, gts: u64, commit: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_MAGIC.len() + 18);
    out.extend_from_slice(&RECORD_MAGIC);
    out.push(KIND_DECISION);
    out.extend_from_slice(&gid.to_le_bytes());
    out.extend_from_slice(&gts.to_le_bytes());
    out.push(u8::from(commit));
    out
}

fn read_u64(bytes: &[u8], at: usize, what: &str) -> Result<u64> {
    let end = at + 8;
    let slice = bytes
        .get(at..end)
        .ok_or_else(|| Error::Archive(format!("record truncated reading {what}")))?;
    let mut buf = [0u8; 8];
    buf.copy_from_slice(slice);
    Ok(u64::from_le_bytes(buf))
}

/// Decodes a WAL record payload: enveloped kinds by magic, anything else
/// as a legacy committed body.
pub fn decode_payload(bytes: &[u8]) -> Result<WalPayload> {
    if bytes.len() < RECORD_MAGIC.len() + 1 || bytes[..RECORD_MAGIC.len()] != RECORD_MAGIC {
        return Ok(WalPayload::Commit {
            gts: None,
            txn: decode_txn(bytes)?,
        });
    }
    let kind = bytes[RECORD_MAGIC.len()];
    let at = RECORD_MAGIC.len() + 1;
    match kind {
        KIND_COMMIT_AT => {
            let gts = read_u64(bytes, at, "commit gts")?;
            Ok(WalPayload::Commit {
                gts: Some(gts),
                txn: decode_txn(&bytes[at + 8..])?,
            })
        }
        KIND_PREPARE => {
            let gid = read_u64(bytes, at, "prepare gid")?;
            let gts = read_u64(bytes, at + 8, "prepare gts")?;
            Ok(WalPayload::Prepare {
                gid,
                gts,
                txn: decode_txn(&bytes[at + 16..])?,
            })
        }
        KIND_DECISION => {
            let gid = read_u64(bytes, at, "decision gid")?;
            let gts = read_u64(bytes, at + 8, "decision gts")?;
            let flag = *bytes
                .get(at + 16)
                .ok_or_else(|| Error::Archive("decision record truncated".into()))?;
            if bytes.len() != at + 17 || flag > 1 {
                return Err(Error::Archive("malformed decision record".into()));
            }
            Ok(WalPayload::Decision {
                gid,
                gts,
                commit: flag == 1,
            })
        }
        other => Err(Error::Archive(format!("unknown record kind {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitempo_core::Row;
    use bitempo_core::Value;
    use bitempo_histgen::Op;

    fn sample_txn() -> TxnOps {
        TxnOps {
            scenarios: Vec::new(),
            ops: vec![Op::Insert {
                table: 0,
                row: Row::new(vec![Value::Int(1), Value::Int(2)]),
                app: None,
            }],
        }
    }

    #[test]
    fn all_kinds_round_trip() {
        let txn = sample_txn();
        let c = encode_committed_at(42, &txn).unwrap();
        assert_eq!(
            decode_payload(&c).unwrap(),
            WalPayload::Commit {
                gts: Some(42),
                txn: txn.clone()
            }
        );
        let p = encode_prepare(7, 42, &txn).unwrap();
        assert_eq!(
            decode_payload(&p).unwrap(),
            WalPayload::Prepare {
                gid: 7,
                gts: 42,
                txn: txn.clone()
            }
        );
        for commit in [true, false] {
            let d = encode_decision(7, 42, commit);
            assert_eq!(
                decode_payload(&d).unwrap(),
                WalPayload::Decision {
                    gid: 7,
                    gts: 42,
                    commit
                }
            );
        }
    }

    #[test]
    fn legacy_bodies_decode_as_unstamped_commits() {
        let txn = sample_txn();
        let raw = encode_txn(&txn).unwrap();
        assert_eq!(
            raw[..2],
            [0, 0],
            "serving-layer bodies lead with zero scenarios"
        );
        assert_eq!(
            decode_payload(&raw).unwrap(),
            WalPayload::Commit { gts: None, txn }
        );
    }

    #[test]
    fn truncated_envelopes_are_rejected() {
        let txn = sample_txn();
        let p = encode_prepare(7, 42, &txn).unwrap();
        assert!(decode_payload(&p[..12]).is_err());
        let mut d = encode_decision(7, 42, true);
        d.push(0); // trailing byte
        assert!(decode_payload(&d).is_err());
        d.truncate(10);
        assert!(decode_payload(&d).is_err());
    }
}
