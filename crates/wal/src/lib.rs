//! # bitempo-wal
//!
//! The durability subsystem: a write-ahead log of committed transactions,
//! periodic engine checkpoints, and a crash-recovery path that restores any
//! engine to a state equivalent to an uncrashed run.
//!
//! The paper benchmarks systems whose durability cost is baked into every
//! commit; to reproduce that trade-off honestly the benchmark needs its own
//! log. The split of responsibilities:
//!
//! * **`bitempo-storage::wal`** owns the byte format (record framing,
//!   checksums, torn-tail scan) — shared vocabulary, no I/O;
//! * [`sink`] abstracts *where* bytes go ([`sink::WalSink`]: a file, a
//!   shared in-memory buffer for tests, a fault-injecting writer);
//! * [`log`] owns *when* bytes become durable ([`log::TxnWal`]): `fsync`
//!   per commit (`dur_strict`), a group-commit flusher thread
//!   (`dur_batched_Nms`), or never until close (`dur_async`);
//! * [`checkpoint`] serializes a quiesced engine's full version set so
//!   recovery never replays the whole history;
//! * [`recover`] ties it together: the [`recover::durable_replay`] driver
//!   appends each committed transaction to the WAL and checkpoints on a
//!   fixed cadence, and [`recover::recover`] rebuilds an engine from the
//!   newest valid checkpoint plus the WAL tail, truncating at the first
//!   torn or corrupt record.
//!
//! Fault injection reuses [`bitempo_core::fault`]: wrapping the sink in a
//! `FaultyWriter` simulates a crash at an arbitrary byte of the log, and
//! the recovery tests assert the recovered engine answers all five query
//! classes identically to an uncrashed oracle replay of the same prefix.

// Tests may unwrap freely; production durability code must not (tblint
// TB010 for lock results, `clippy::unwrap_used` in Cargo.toml for the rest).
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod checkpoint;
pub mod log;
pub mod record;
pub mod recover;
pub mod sink;

pub use bitempo_storage::DurabilityMode;
pub use checkpoint::Checkpoint;
pub use log::{DurabilityWaiter, TxnWal};
pub use record::{
    decode_payload, encode_committed_at, encode_decision, encode_prepare, WalPayload,
};
pub use recover::{
    canonical_state, durable_replay, oracle_replay, recover, DurableOptions, DurableRun,
    PendingPrepare, Recovered, RecoveryReport,
};
pub use sink::{NullSink, SharedBuf, WalSink};
