//! Where WAL bytes go: the sink abstraction and its implementations.
//!
//! A [`WalSink`] is an ordered byte sink with one extra operation the
//! durability modes are defined in terms of: [`WalSink::sync`], the point
//! at which previously-written bytes are promised to survive a crash.
//! Everything above this trait is sink-agnostic, so the same log writer
//! runs against a real file (benchmarks), a shared in-memory buffer
//! (tests and oracles) or a fault-injecting wrapper (crash simulation).

use bitempo_core::fault::FaultyWriter;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

/// An ordered byte sink with an explicit durability barrier.
///
/// `Send + 'static` because the group-commit flusher owns its sink on a
/// separate thread.
pub trait WalSink: Write + Send {
    /// Forces every byte written so far to stable storage. What "stable"
    /// means is the sink's business: `fdatasync` for files, a no-op for
    /// in-memory buffers (whose stability boundary is the process).
    fn sync(&mut self) -> io::Result<()>;
}

impl WalSink for std::fs::File {
    fn sync(&mut self) -> io::Result<()> {
        self.sync_data()
    }
}

/// An in-memory sink the test harness can keep a handle on: clones share
/// the same buffer, so the "disk image" survives handing the sink (or a
/// [`FaultyWriter`] around it) to a [`crate::TxnWal`].
///
/// Sync is a no-op — in-memory bytes are as stable as they will ever get —
/// which makes the *logic* of the durability modes testable without real
/// fsync latency. The crash tests simulate the missing stability by only
/// ever reading the buffer, never trusting acknowledgements.
#[derive(Debug, Clone, Default)]
pub struct SharedBuf {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl SharedBuf {
    /// An empty shared buffer.
    pub fn new() -> SharedBuf {
        SharedBuf::default()
    }

    /// A copy of everything written so far — the simulated disk image.
    pub fn snapshot(&self) -> Vec<u8> {
        self.bytes.lock().expect("wal buffer poisoned").clone()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.bytes.lock().expect("wal buffer poisoned").len()
    }

    /// True if nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.bytes
            .lock()
            .expect("wal buffer poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl WalSink for SharedBuf {
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A sink that discards everything: the oracle replays (which need the
/// durability *code path* but no log) and throughput baselines use it.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Write for NullSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl WalSink for NullSink {
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A fault-injecting sink is still a sink: this is how the crash tests
/// seed truncations and bit flips into the log stream. Sync degrades to
/// flush — the injected crash point is the write failure itself.
impl<W: Write + Send> WalSink for FaultyWriter<W> {
    fn sync(&mut self) -> io::Result<()> {
        self.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitempo_core::fault::{FaultKind, FaultPlan};

    #[test]
    fn shared_buf_clones_share_bytes() {
        let mut a = SharedBuf::new();
        let b = a.clone();
        assert!(b.is_empty());
        a.write_all(b"hello").unwrap();
        a.sync().unwrap();
        assert_eq!(b.snapshot(), b"hello");
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn null_sink_swallows_everything() {
        let mut n = NullSink;
        n.write_all(b"gone").unwrap();
        n.sync().unwrap();
    }

    #[test]
    fn faulty_writer_is_a_sink_and_keeps_the_prefix() {
        let buf = SharedBuf::new();
        let plan = FaultPlan::none().with(FaultKind::TruncateAt(4));
        let mut w = FaultyWriter::new(buf.clone(), plan);
        let err = w.write_all(b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        assert_eq!(buf.snapshot(), b"0123", "bytes before the cut are kept");
    }
}
