//! Composite primary keys.

use crate::{Row, Value};
use std::fmt;

/// A (possibly composite) primary-key value extracted from a row.
///
/// TPC-BiH keys are at most two integers (`PARTSUPP(partkey, suppkey)`,
/// `LINEITEM(orderkey, linenumber)`); the inline representation avoids a
/// heap allocation per key for those and falls back to a vector for wider
/// keys created by tests.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Key {
    /// Single-column integer key (the common case).
    Int(i64),
    /// Two-column integer key.
    Int2(i64, i64),
    /// Anything else.
    General(Vec<Value>),
}

impl Key {
    /// Extracts the key for `key_columns` from `row`.
    pub fn from_row(row: &Row, key_columns: &[usize]) -> Key {
        match key_columns {
            [a] => {
                if let Value::Int(i) = row.get(*a) {
                    return Key::Int(*i);
                }
                Key::General(vec![row.get(*a).clone()])
            }
            [a, b] => {
                if let (Value::Int(x), Value::Int(y)) = (row.get(*a), row.get(*b)) {
                    return Key::Int2(*x, *y);
                }
                Key::General(vec![row.get(*a).clone(), row.get(*b).clone()])
            }
            cols => Key::General(cols.iter().map(|&i| row.get(i).clone()).collect()),
        }
    }

    /// The key as a vector of values (for index probes).
    pub fn to_values(&self) -> Vec<Value> {
        match self {
            Key::Int(a) => vec![Value::Int(*a)],
            Key::Int2(a, b) => vec![Value::Int(*a), Value::Int(*b)],
            Key::General(v) => v.clone(),
        }
    }

    /// Convenience constructor for single-integer keys.
    pub fn int(v: i64) -> Key {
        Key::Int(v)
    }

    /// Convenience constructor for two-integer keys.
    pub fn int2(a: i64, b: i64) -> Key {
        Key::Int2(a, b)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Key::Int(a) => write!(f, "{a}"),
            Key::Int2(a, b) => write!(f, "({a}, {b})"),
            Key::General(v) => {
                write!(f, "(")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extraction_specializes_int_keys() {
        let row = Row::new(vec![Value::Int(7), Value::str("x"), Value::Int(9)]);
        assert_eq!(Key::from_row(&row, &[0]), Key::Int(7));
        assert_eq!(Key::from_row(&row, &[0, 2]), Key::Int2(7, 9));
        assert_eq!(
            Key::from_row(&row, &[1]),
            Key::General(vec![Value::str("x")])
        );
    }

    #[test]
    fn round_trip_to_values() {
        assert_eq!(Key::int(3).to_values(), vec![Value::Int(3)]);
        assert_eq!(
            Key::int2(3, 4).to_values(),
            vec![Value::Int(3), Value::Int(4)]
        );
    }

    #[test]
    fn display() {
        assert_eq!(Key::int(3).to_string(), "3");
        assert_eq!(Key::int2(3, 4).to_string(), "(3, 4)");
    }

    #[test]
    fn keys_hash_and_compare() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Key::int(1));
        set.insert(Key::int2(1, 2));
        assert!(set.contains(&Key::int(1)));
        assert!(!set.contains(&Key::int(2)));
    }
}
