//! Deterministic random number generation for the data generators.
//!
//! TPC-H's `dbgen` owes its reproducibility to per-column random substreams
//! with documented seeds. We follow the same discipline with PCG32
//! (O'Neill 2014): tiny state, excellent statistical quality, and — the
//! property `rand` does not guarantee across versions — a value sequence
//! that is fixed forever by this implementation. `derive_stream` splits
//! independent substreams per (table, column, row) so rows can be generated
//! in any order or in parallel with identical results.

/// A PCG-XSH-RR 64/32 generator.
///
/// ```
/// use bitempo_core::Pcg32;
///
/// let root = Pcg32::new(42, 0);
/// // Per-row substreams are independent of generation order:
/// let mut row_7a = root.derive_stream(7);
/// let mut row_7b = root.derive_stream(7);
/// assert_eq!(row_7a.int_range(1, 100), row_7b.int_range(1, 100));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg32 {
    /// Creates a generator from a seed and a stream id. Different stream ids
    /// yield statistically independent sequences for the same seed.
    pub fn new(seed: u64, stream: u64) -> Pcg32 {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Derives an independent substream keyed by `salt` (e.g. a row number),
    /// mixing with SplitMix64 so nearby salts do not correlate.
    #[must_use]
    pub fn derive_stream(&self, salt: u64) -> Pcg32 {
        let mixed = splitmix64(self.inc ^ salt.wrapping_mul(0x9E3779B97F4A7C15));
        Pcg32::new(splitmix64(self.state ^ salt), mixed)
    }

    /// Next raw 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Uniform integer in `[lo, hi]` (inclusive, like dbgen's `RANDOM`).
    /// Uses Lemire rejection to avoid modulo bias.
    pub fn int_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "int_range: lo {lo} > hi {hi}");
        let span = (hi.wrapping_sub(lo) as u64).wrapping_add(1);
        if span == 0 {
            // Full 64-bit range requested.
            return self.next_u64() as i64;
        }
        let mut m = u128::from(self.next_u64()) * u128::from(span);
        let mut low = m as u64;
        if low < span {
            let threshold = span.wrapping_neg() % span;
            while low < threshold {
                m = u128::from(self.next_u64()) * u128::from(span);
                low = m as u64;
            }
        }
        lo.wrapping_add((m >> 64) as i64)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit_f64() * (hi - lo)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Picks an index from a discrete distribution given by `weights`
    /// (need not be normalized). Panics if all weights are zero.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "pick_weighted: zero total weight");
        let mut x = self.unit_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Picks a uniformly random element of `items`.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.int_range(0, items.len() as i64 - 1) as usize]
    }

    /// A draw from a bounded Zipf-like distribution over `[1, n]` with
    /// exponent `s`, via rejection sampling. Used for the non-uniform
    /// application-time distributions the benchmark calls for (paper §3:
    /// "non-uniform distributions along the application time dimension").
    pub fn zipf(&mut self, n: u64, s: f64) -> u64 {
        debug_assert!(n >= 1);
        // Rejection method of Devroye for Zipf; good enough for generator use.
        let t = ((n as f64).powf(1.0 - s) - s) / (1.0 - s);
        loop {
            let u = self.unit_f64() * t;
            let x = if u <= 1.0 {
                u
            } else {
                (u * (1.0 - s) + s).powf(1.0 / (1.0 - s))
            };
            let k = x.floor().max(1.0) as u64;
            if k > n {
                continue;
            }
            let ratio = (k as f64).powf(-s) / if k == 1 { 1.0 } else { x.powf(-s) };
            if self.unit_f64() < ratio {
                return k;
            }
        }
    }
}

/// SplitMix64 mixing function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Pcg32::new(42, 1);
        let mut b = Pcg32::new(42, 1);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_streams_differ() {
        let mut a = Pcg32::new(42, 1);
        let mut b = Pcg32::new(42, 2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn derive_stream_is_deterministic_and_independent() {
        let root = Pcg32::new(7, 0);
        let mut s1 = root.derive_stream(10);
        let mut s1b = root.derive_stream(10);
        let mut s2 = root.derive_stream(11);
        assert_eq!(s1.next_u64(), s1b.next_u64());
        assert_ne!(s1.next_u64(), s2.next_u64());
    }

    #[test]
    fn int_range_bounds_and_coverage() {
        let mut rng = Pcg32::new(1, 1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.int_range(10, 14);
            assert!((10..=14).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range hit");
        // Degenerate range.
        assert_eq!(rng.int_range(3, 3), 3);
    }

    #[test]
    fn int_range_is_roughly_uniform() {
        let mut rng = Pcg32::new(9, 3);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.int_range(0, 9) as usize] += 1;
        }
        for &c in &counts {
            let expected = n as f64 / 10.0;
            assert!((f64::from(c) - expected).abs() < expected * 0.05);
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = Pcg32::new(5, 5);
        for _ in 0..1000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn weighted_pick_matches_weights() {
        let mut rng = Pcg32::new(11, 0);
        let weights = [0.1, 0.6, 0.3];
        let mut counts = [0u32; 3];
        let n = 60_000;
        for _ in 0..n {
            counts[rng.pick_weighted(&weights)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let frac = f64::from(counts[i]) / f64::from(n);
            assert!((frac - w).abs() < 0.02, "weight {i}: {frac} vs {w}");
        }
    }

    #[test]
    fn zipf_is_skewed_and_bounded() {
        let mut rng = Pcg32::new(3, 3);
        let mut ones = 0;
        for _ in 0..2000 {
            let v = rng.zipf(100, 1.1);
            assert!((1..=100).contains(&v));
            if v == 1 {
                ones += 1;
            }
        }
        // Rank 1 should dominate heavily under s = 1.1.
        assert!(ones > 400, "zipf not skewed: {ones} ones of 2000");
    }

    #[test]
    fn chance_probability() {
        let mut rng = Pcg32::new(13, 1);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
