//! The bitemporal time model: system time, application time, and periods.
//!
//! Both dimensions use half-open periods `[start, end)`. This is the SQL:2011
//! convention and makes adjacency tests exact: two periods *meet* when one's
//! `end` equals the other's `start`, with no off-by-one corrections.

use crate::date;
use std::fmt;

/// A point in **system time**: a monotone logical commit timestamp.
///
/// The engines assign one `SysTime` per committed transaction, exactly like
/// the commercial systems in the paper assign a commit timestamp — except
/// ours is a logical counter, which keeps history replay deterministic
/// (see DESIGN.md, substitution table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SysTime(pub u64);

impl SysTime {
    /// The dawn of history: no transaction has committed yet.
    pub const ZERO: SysTime = SysTime(0);
    /// "Until changed": the end of the system period of a current version.
    pub const MAX: SysTime = SysTime(u64::MAX);

    /// The next commit timestamp.
    #[must_use]
    pub fn next(self) -> SysTime {
        SysTime(self.0 + 1)
    }
}

impl fmt::Display for SysTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == SysTime::MAX {
            write!(f, "∞")
        } else {
            write!(f, "t{}", self.0)
        }
    }
}

/// A point in **application time**: a civil date, stored as days since
/// 1970-01-01 (see [`crate::date`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AppDate(pub i64);

impl AppDate {
    /// Sentinel for "valid forever" (the open end of an application period).
    pub const MAX: AppDate = AppDate(i64::MAX);
    /// Sentinel for "since the beginning of time".
    pub const MIN: AppDate = AppDate(i64::MIN);

    /// Constructs an `AppDate` from a civil date.
    pub const fn from_ymd(year: i32, month: u32, day: u32) -> AppDate {
        AppDate(date::days_from_civil(year, month, day))
    }

    /// The civil `(year, month, day)` of this date.
    pub const fn to_ymd(self) -> (i32, u32, u32) {
        date::civil_from_days(self.0)
    }

    /// This date plus `days` (may be negative). Saturates at the sentinels.
    #[must_use]
    pub fn plus_days(self, days: i64) -> AppDate {
        if self == AppDate::MAX || self == AppDate::MIN {
            self
        } else {
            AppDate(self.0.saturating_add(days))
        }
    }
}

impl fmt::Display for AppDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == AppDate::MAX {
            write!(f, "forever")
        } else if *self == AppDate::MIN {
            write!(f, "-∞")
        } else {
            write!(f, "{}", date::format_iso_date(self.0))
        }
    }
}

/// A half-open period `[start, end)` over an ordered time domain.
///
/// ```
/// use bitempo_core::{AppDate, Period};
///
/// let q1 = Period::new(AppDate::from_ymd(2024, 1, 1), AppDate::from_ymd(2024, 4, 1));
/// let q2 = Period::new(AppDate::from_ymd(2024, 4, 1), AppDate::from_ymd(2024, 7, 1));
/// assert!(q1.meets(&q2));
/// assert!(!q1.overlaps(&q2), "half-open periods that meet do not overlap");
/// assert!(q1.contains_point(AppDate::from_ymd(2024, 3, 31)));
/// assert!(!q1.contains_point(AppDate::from_ymd(2024, 4, 1)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Period<T> {
    /// Inclusive start.
    pub start: T,
    /// Exclusive end.
    pub end: T,
}

/// A system-time period.
pub type SysPeriod = Period<SysTime>;
/// An application-time period.
pub type AppPeriod = Period<AppDate>;

impl<T: Copy + Ord> Period<T> {
    /// Creates a period. Callers must ensure `start <= end`; user-supplied
    /// bounds are validated at the input edges (SQL layer, archive reader)
    /// before they reach this constructor, so an inverted period here is a
    /// bug in engine code, caught in debug builds.
    pub fn new(start: T, end: T) -> Period<T> {
        debug_assert!(start <= end, "inverted period: start > end");
        Period { start, end }
    }

    /// True if the period contains no point (`start >= end`).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// True if `point` lies inside `[start, end)`.
    pub fn contains_point(&self, point: T) -> bool {
        self.start <= point && point < self.end
    }

    /// True if `other` is fully contained in `self` (Allen: contains/equals).
    pub fn contains_period(&self, other: &Period<T>) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// True if the two periods share at least one point (Allen: overlaps,
    /// during, starts, finishes, equals — anything but before/after/meets).
    pub fn overlaps(&self, other: &Period<T>) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// True if `self` ends exactly where `other` begins (Allen: meets).
    pub fn meets(&self, other: &Period<T>) -> bool {
        self.end == other.start
    }

    /// True if `self` lies entirely before `other` with a gap or meeting it.
    pub fn before(&self, other: &Period<T>) -> bool {
        self.end <= other.start
    }

    /// The intersection of two periods, or `None` when disjoint.
    pub fn intersect(&self, other: &Period<T>) -> Option<Period<T>> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(Period { start, end })
        } else {
            None
        }
    }

    /// The parts of `self` *not* covered by `other`: zero, one or two pieces.
    ///
    /// This is the core of sequenced DML: updating `FOR PORTION OF` an
    /// application period leaves these residues as additional rows
    /// (Snodgrass's SEQUENCED model, paper §2.3).
    pub fn difference(&self, other: &Period<T>) -> (Option<Period<T>>, Option<Period<T>>) {
        let left = if self.start < other.start {
            let p = Period::new(self.start, self.end.min(other.start));
            (!p.is_empty()).then_some(p)
        } else {
            None
        };
        let right = if other.end < self.end {
            let p = Period::new(self.start.max(other.end), self.end);
            (!p.is_empty()).then_some(p)
        } else {
            None
        };
        (left, right)
    }
}

impl SysPeriod {
    /// A period that is current as of `start` and still visible.
    pub const fn since(start: SysTime) -> SysPeriod {
        Period {
            start,
            end: SysTime::MAX,
        }
    }

    /// True if this version is still visible (its system period is open).
    pub fn is_current(&self) -> bool {
        self.end == SysTime::MAX
    }

    /// The full system-time axis.
    pub const ALL: SysPeriod = Period {
        start: SysTime::ZERO,
        end: SysTime::MAX,
    };
}

impl AppPeriod {
    /// The full application-time axis.
    pub const ALL: AppPeriod = Period {
        start: AppDate::MIN,
        end: AppDate::MAX,
    };

    /// A period valid from `start` until forever.
    pub const fn since(start: AppDate) -> AppPeriod {
        Period {
            start,
            end: AppDate::MAX,
        }
    }
}

impl<T: fmt::Display> fmt::Display for Period<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(a: i64, b: i64) -> AppPeriod {
        Period::new(AppDate(a), AppDate(b))
    }

    #[test]
    fn point_containment_is_half_open() {
        let period = p(10, 20);
        assert!(!period.contains_point(AppDate(9)));
        assert!(period.contains_point(AppDate(10)));
        assert!(period.contains_point(AppDate(19)));
        assert!(!period.contains_point(AppDate(20)));
    }

    #[test]
    fn overlap_excludes_meeting() {
        assert!(p(0, 10).overlaps(&p(9, 20)));
        assert!(!p(0, 10).overlaps(&p(10, 20)));
        assert!(p(0, 10).meets(&p(10, 20)));
        assert!(p(0, 10).before(&p(10, 20)));
        assert!(p(0, 10).before(&p(15, 20)));
        assert!(!p(5, 10).before(&p(0, 6)));
    }

    #[test]
    fn intersection() {
        assert_eq!(p(0, 10).intersect(&p(5, 15)), Some(p(5, 10)));
        assert_eq!(p(0, 10).intersect(&p(10, 15)), None);
        assert_eq!(p(0, 10).intersect(&p(2, 8)), Some(p(2, 8)));
    }

    #[test]
    fn difference_splits() {
        // portion strictly inside: two residues
        assert_eq!(
            p(0, 10).difference(&p(3, 7)),
            (Some(p(0, 3)), Some(p(7, 10)))
        );
        // portion covers start: right residue only
        assert_eq!(p(0, 10).difference(&p(0, 7)), (None, Some(p(7, 10))));
        // portion covers everything: nothing left
        assert_eq!(p(0, 10).difference(&p(0, 10)), (None, None));
        // disjoint portion leaves self intact on the left
        assert_eq!(p(0, 10).difference(&p(20, 30)), (Some(p(0, 10)), None));
    }

    #[test]
    fn sys_period_current() {
        let cur = SysPeriod::since(SysTime(5));
        assert!(cur.is_current());
        assert!(cur.contains_point(SysTime(5)));
        assert!(cur.contains_point(SysTime(u64::MAX - 1)));
        let closed = SysPeriod::new(SysTime(5), SysTime(9));
        assert!(!closed.is_current());
    }

    #[test]
    fn app_date_arithmetic_and_display() {
        let d = AppDate::from_ymd(1995, 6, 17);
        assert_eq!(d.plus_days(1).to_ymd(), (1995, 6, 18));
        assert_eq!(d.to_string(), "1995-06-17");
        assert_eq!(AppDate::MAX.to_string(), "forever");
        assert_eq!(AppDate::MAX.plus_days(5), AppDate::MAX);
        assert_eq!(SysTime::MAX.to_string(), "∞");
        assert_eq!(SysTime(7).to_string(), "t7");
    }

    #[test]
    fn empty_period_detection() {
        assert!(p(5, 5).is_empty());
        // Inverted bounds can only be written by hand — `Period::new`
        // debug-asserts against them — yet `is_empty` must still hold.
        let inverted = Period {
            start: AppDate(6),
            end: AppDate(5),
        };
        assert!(inverted.is_empty());
        assert!(!p(5, 6).is_empty());
    }
}
