//! Row representation shared by all engines and operators.

use crate::Value;
use std::fmt;
use std::sync::Arc;

/// A fixed-width tuple of values.
///
/// Rows are immutable once built and cheaply cloneable (`Arc`-backed), so the
/// current→history movement inside the engines and the pipelining between
/// query operators never copies cell payloads.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Row {
    values: Arc<[Value]>,
}

impl Row {
    /// Builds a row from values.
    pub fn new(values: Vec<Value>) -> Row {
        Row {
            values: values.into(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The value in column `idx`. Panics if out of bounds — column indexes
    /// are resolved against the schema before execution.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// All values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// A new row with column `idx` replaced by `value`.
    #[must_use]
    pub fn with(&self, idx: usize, value: Value) -> Row {
        let mut v: Vec<Value> = self.values.to_vec();
        v[idx] = value;
        Row::new(v)
    }

    /// A new row with the given `(index, value)` replacements applied.
    #[must_use]
    pub fn with_all(&self, updates: &[(usize, Value)]) -> Row {
        let mut v: Vec<Value> = self.values.to_vec();
        for (idx, value) in updates {
            v[*idx] = value.clone();
        }
        Row::new(v)
    }

    /// A new row containing only the columns listed in `projection`.
    #[must_use]
    pub fn project(&self, projection: &[usize]) -> Row {
        Row::new(projection.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// A new row that is `self` followed by `other` (join concatenation).
    #[must_use]
    pub fn concat(&self, other: &Row) -> Row {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.values);
        v.extend_from_slice(&other.values);
        Row::new(v)
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Row::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Row {
        Row::new(vec![Value::Int(1), Value::str("a"), Value::Double(2.5)])
    }

    #[test]
    fn accessors() {
        let r = sample();
        assert_eq!(r.arity(), 3);
        assert_eq!(r.get(0), &Value::Int(1));
        assert_eq!(r.get(1), &Value::str("a"));
    }

    #[test]
    fn with_replaces_without_mutating_original() {
        let r = sample();
        let r2 = r.with(0, Value::Int(9));
        assert_eq!(r.get(0), &Value::Int(1));
        assert_eq!(r2.get(0), &Value::Int(9));
        let r3 = r.with_all(&[(0, Value::Int(5)), (2, Value::Null)]);
        assert_eq!(r3.get(0), &Value::Int(5));
        assert!(r3.get(2).is_null());
    }

    #[test]
    fn project_and_concat() {
        let r = sample();
        let p = r.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Double(2.5), Value::Int(1)]);
        let c = r.concat(&p);
        assert_eq!(c.arity(), 5);
        assert_eq!(c.get(3), &Value::Double(2.5));
    }

    #[test]
    fn display() {
        assert_eq!(sample().to_string(), "(1, a, 2.50)");
    }

    #[test]
    fn rows_order_lexicographically() {
        let a = Row::new(vec![Value::Int(1), Value::Int(2)]);
        let b = Row::new(vec![Value::Int(1), Value::Int(3)]);
        assert!(a < b);
    }
}
