//! Deterministic fault injection for the archive / load / scan pipeline.
//!
//! A benchmark suite that populates four engines from one generator archive
//! (paper §4) is only trustworthy if every layer fails *loudly and
//! recoverably* when the archive is damaged or a worker misbehaves. This
//! module provides the injection side: seeded [`FaultPlan`]s (following the
//! same PCG32 substream discipline as [`crate::rng`]) and [`FaultyReader`] /
//! [`FaultyWriter`] wrappers that corrupt an I/O stream in flight —
//! truncations, single-byte bit-flips, short reads/writes, and one-shot
//! transient errors. The detection and recovery sides live in the archive
//! (CRC-verified format v2), the morsel layer (panic containment), and the
//! bench runner (per-query timeout + `catch_unwind`).

use std::io::{self, Read, Write};

use crate::rng::Pcg32;

/// One kind of injected fault, positioned by byte offset in the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The stream ends (EOF on read, sink-full error on write) once the
    /// cursor reaches this offset.
    TruncateAt(u64),
    /// XOR the byte at `offset` with `mask` as it passes through.
    BitFlip {
        /// Byte offset within the stream.
        offset: u64,
        /// Non-zero XOR mask applied to that byte.
        mask: u8,
    },
    /// Cap every read/write at `max` bytes, exercising short-I/O handling.
    ShortIo {
        /// Maximum bytes transferred per call (at least 1).
        max: usize,
    },
    /// Fail exactly once with a retryable [`io::ErrorKind::Interrupted`]-like
    /// error when the cursor reaches this offset, then succeed on retry.
    TransientAt(u64),
}

/// A deterministic set of faults to inject into one stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The faults, applied independently.
    pub faults: Vec<FaultKind>,
}

impl FaultPlan {
    /// A plan that injects nothing (the wrappers become transparent).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builder-style: adds one fault to the plan.
    #[must_use]
    pub fn with(mut self, fault: FaultKind) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// A seeded random plan against a stream of `len` bytes: one bit-flip,
    /// and with 50% probability each a truncation and a transient error.
    /// Identical `(seed, len)` always yields the identical plan.
    pub fn seeded(seed: u64, len: u64) -> FaultPlan {
        let mut rng = Pcg32::new(seed, 0xFA_07).derive_stream(len);
        let mut plan = FaultPlan::none();
        let offset = rng.int_range(0, len.max(1) as i64 - 1) as u64;
        let mask = rng.int_range(1, 255) as u8;
        plan = plan.with(FaultKind::BitFlip { offset, mask });
        if rng.chance(0.5) {
            let cut = rng.int_range(0, len.max(1) as i64 - 1) as u64;
            plan = plan.with(FaultKind::TruncateAt(cut));
        }
        if rng.chance(0.5) {
            let at = rng.int_range(0, len.max(1) as i64 - 1) as u64;
            plan = plan.with(FaultKind::TransientAt(at));
        }
        plan
    }

    /// Number of faults in the plan.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Extracts a human-readable message from a panic payload
/// (the `Box<dyn Any>` handed to [`std::panic::catch_unwind`]).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Shared fault-application state for the reader/writer wrappers.
#[derive(Debug, Clone)]
struct Injector {
    plan: FaultPlan,
    pos: u64,
    /// Which `TransientAt` faults already fired (parallel to `plan.faults`).
    fired: Vec<bool>,
    injected: usize,
}

impl Injector {
    fn new(plan: FaultPlan) -> Injector {
        let n = plan.faults.len();
        Injector {
            plan,
            pos: 0,
            fired: vec![false; n],
            injected: 0,
        }
    }

    /// Caps `want` according to truncation and short-I/O faults; returns
    /// `Ok(0)` size for a reached truncation point, or a transient error.
    fn admit(&mut self, want: usize) -> io::Result<usize> {
        let mut allow = want;
        for (i, fault) in self.plan.faults.iter().enumerate() {
            match *fault {
                FaultKind::TruncateAt(cut) => {
                    if self.pos >= cut {
                        if !self.fired[i] {
                            self.fired[i] = true;
                            self.injected += 1;
                        }
                        return Ok(0);
                    }
                    allow = allow.min((cut - self.pos) as usize);
                }
                FaultKind::ShortIo { max } => {
                    if !self.fired[i] && allow > max.max(1) {
                        self.fired[i] = true;
                        self.injected += 1;
                    }
                    allow = allow.min(max.max(1));
                }
                FaultKind::TransientAt(at) => {
                    if !self.fired[i] && self.pos >= at {
                        self.fired[i] = true;
                        self.injected += 1;
                        return Err(io::Error::new(
                            io::ErrorKind::Interrupted,
                            format!("injected transient fault at byte {at}"),
                        ));
                    }
                }
                FaultKind::BitFlip { .. } => {}
            }
        }
        Ok(allow)
    }

    /// Applies bit-flips to a buffer that occupies stream offsets
    /// `[self.pos, self.pos + buf.len())`, then advances the cursor.
    fn corrupt_and_advance(&mut self, buf: &mut [u8]) {
        for (i, fault) in self.plan.faults.iter().enumerate() {
            if let FaultKind::BitFlip { offset, mask } = *fault {
                if offset >= self.pos && offset < self.pos + buf.len() as u64 {
                    buf[(offset - self.pos) as usize] ^= mask;
                    if !self.fired[i] {
                        self.fired[i] = true;
                        self.injected += 1;
                    }
                }
            }
        }
        self.pos += buf.len() as u64;
    }
}

/// A [`Read`] adapter that injects the faults of a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultyReader<R: Read> {
    inner: R,
    injector: Injector,
}

impl<R: Read> FaultyReader<R> {
    /// Wraps `inner`, injecting `plan`.
    pub fn new(inner: R, plan: FaultPlan) -> FaultyReader<R> {
        FaultyReader {
            inner,
            injector: Injector::new(plan),
        }
    }

    /// How many distinct faults actually fired so far.
    pub fn injected(&self) -> usize {
        self.injector.injected
    }

    /// Unwraps the inner reader.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let allow = self.injector.admit(buf.len())?;
        if allow == 0 {
            return Ok(0);
        }
        let n = self.inner.read(&mut buf[..allow])?;
        self.injector.corrupt_and_advance(&mut buf[..n]);
        Ok(n)
    }
}

/// A [`Write`] adapter that injects the faults of a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultyWriter<W: Write> {
    inner: W,
    injector: Injector,
}

impl<W: Write> FaultyWriter<W> {
    /// Wraps `inner`, injecting `plan`.
    pub fn new(inner: W, plan: FaultPlan) -> FaultyWriter<W> {
        FaultyWriter {
            inner,
            injector: Injector::new(plan),
        }
    }

    /// How many distinct faults actually fired so far.
    pub fn injected(&self) -> usize {
        self.injector.injected
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let allow = self.injector.admit(buf.len())?;
        if allow == 0 {
            // A truncated sink cannot accept more bytes; writing zero would
            // loop forever in write_all, so fail loudly instead.
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "injected truncation: sink full",
            ));
        }
        let mut chunk = buf[..allow].to_vec();
        self.injector.corrupt_and_advance(&mut chunk);
        self.inner.write_all(&chunk)?;
        Ok(allow)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_all_retrying(mut r: impl Read) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        let mut buf = [0u8; 4];
        loop {
            match r.read(&mut buf) {
                Ok(0) => return Ok(out),
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    #[test]
    fn no_faults_is_transparent() {
        let data: Vec<u8> = (0..=255).collect();
        let r = FaultyReader::new(&data[..], FaultPlan::none());
        assert_eq!(read_all_retrying(r).unwrap(), data);
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_byte() {
        let data = [0u8; 32];
        let plan = FaultPlan::none().with(FaultKind::BitFlip {
            offset: 17,
            mask: 0x40,
        });
        let mut r = FaultyReader::new(&data[..], plan);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(r.injected(), 1);
        assert_eq!(out[17], 0x40);
        assert!(out.iter().enumerate().all(|(i, &b)| i == 17 || b == 0));
    }

    #[test]
    fn truncation_ends_stream_early() {
        let data = [7u8; 100];
        let plan = FaultPlan::none().with(FaultKind::TruncateAt(42));
        let mut r = FaultyReader::new(&data[..], plan);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out.len(), 42);
        assert_eq!(r.injected(), 1);
    }

    #[test]
    fn short_io_caps_each_read() {
        let data = [1u8; 64];
        let plan = FaultPlan::none().with(FaultKind::ShortIo { max: 3 });
        let mut r = FaultyReader::new(&data[..], plan);
        let mut buf = [0u8; 16];
        let n = r.read(&mut buf).unwrap();
        assert_eq!(n, 3);
        assert_eq!(read_all_retrying(r).unwrap().len(), 64 - 3);
    }

    #[test]
    fn transient_fires_once_then_recovers() {
        let data = [9u8; 20];
        let plan = FaultPlan::none().with(FaultKind::TransientAt(8));
        let mut r = FaultyReader::new(&data[..], plan);
        let mut buf = [0u8; 8];
        assert_eq!(r.read(&mut buf).unwrap(), 8);
        let err = r.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        // Retry succeeds and the rest of the stream is intact.
        assert_eq!(read_all_retrying(r).unwrap().len(), 12);
    }

    #[test]
    fn writer_injects_flip_and_truncation() {
        let plan = FaultPlan::none().with(FaultKind::BitFlip {
            offset: 2,
            mask: 0xFF,
        });
        let mut w = FaultyWriter::new(Vec::new(), plan);
        w.write_all(&[0, 0, 0, 0]).unwrap();
        assert_eq!(w.injected(), 1);
        assert_eq!(w.into_inner(), vec![0, 0, 0xFF, 0]);

        let plan = FaultPlan::none().with(FaultKind::TruncateAt(2));
        let mut w = FaultyWriter::new(Vec::new(), plan);
        let err = w.write_all(&[1, 2, 3, 4]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        assert_eq!(w.into_inner(), vec![1, 2]);
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(42, 1000);
        let b = FaultPlan::seeded(42, 1000);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = FaultPlan::seeded(43, 1000);
        assert_ne!(a, c);
    }

    #[test]
    fn panic_message_extracts_strings() {
        let payload: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert_eq!(panic_message(payload.as_ref()), "boom");
        let payload: Box<dyn std::any::Any + Send> = Box::new(String::from("bang"));
        assert_eq!(panic_message(payload.as_ref()), "bang");
        let payload: Box<dyn std::any::Any + Send> = Box::new(17u32);
        assert_eq!(panic_message(payload.as_ref()), "non-string panic payload");
    }
}
