//! Proleptic-Gregorian civil date arithmetic.
//!
//! Application time in TPC-BiH is date-granular (the TPC-H date columns it is
//! derived from are `DATE`s). We represent dates as a day count since the
//! Unix epoch (1970-01-01 = day 0), which makes period arithmetic integral
//! and branch-free. The conversions below are the classic Howard Hinnant
//! `days_from_civil` / `civil_from_days` algorithms, valid far beyond the
//! TPC-H range (1992-01-01 .. 1998-12-31).

/// Days since 1970-01-01 for the given civil date.
///
/// Months are 1-based, days are 1-based. Dates before the epoch yield
/// negative numbers.
pub const fn days_from_civil(year: i32, month: u32, day: u32) -> i64 {
    let y = if month <= 2 { year - 1 } else { year } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (month as i64 + 9) % 12; // [0, 11], March = 0
    let doy = (153 * mp + 2) / 5 + day as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Civil date `(year, month, day)` for the given day count since 1970-01-01.
pub const fn civil_from_days(days: i64) -> (i32, u32, u32) {
    let z = days + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    let year = if m <= 2 { y + 1 } else { y } as i32;
    (year, m, d)
}

/// True if `year` is a Gregorian leap year.
pub const fn is_leap_year(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// Number of days in the given month of the given year.
pub const fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => panic!("month out of range"),
    }
}

/// Parses `YYYY-MM-DD` into a day count. Returns `None` on malformed input.
pub fn parse_iso_date(s: &str) -> Option<i64> {
    let bytes = s.as_bytes();
    if bytes.len() != 10 || bytes[4] != b'-' || bytes[7] != b'-' {
        return None;
    }
    let year: i32 = s.get(0..4)?.parse().ok()?;
    let month: u32 = s.get(5..7)?.parse().ok()?;
    let day: u32 = s.get(8..10)?.parse().ok()?;
    if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
        return None;
    }
    Some(days_from_civil(year, month, day))
}

/// Formats a day count as `YYYY-MM-DD`.
pub fn format_iso_date(days: i64) -> String {
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn tpch_date_range() {
        // TPC-H orderdate domain: 1992-01-01 .. 1998-08-02.
        let start = days_from_civil(1992, 1, 1);
        let end = days_from_civil(1998, 8, 2);
        assert_eq!(start, 8035);
        assert_eq!(end - start, 2405);
    }

    #[test]
    fn round_trip_across_decades() {
        for days in (-200_000..200_000).step_by(97) {
            let (y, m, d) = civil_from_days(days);
            assert_eq!(days_from_civil(y, m, d), days, "day {days} ({y}-{m}-{d})");
        }
    }

    #[test]
    fn leap_years() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(1996));
        assert!(!is_leap_year(1997));
        assert_eq!(days_in_month(2000, 2), 29);
        assert_eq!(days_in_month(1900, 2), 28);
        assert_eq!(days_in_month(1997, 12), 31);
    }

    #[test]
    fn iso_parse_and_format() {
        assert_eq!(parse_iso_date("1992-01-01"), Some(8035));
        assert_eq!(format_iso_date(8035), "1992-01-01");
        assert_eq!(parse_iso_date("1992-13-01"), None);
        assert_eq!(parse_iso_date("1992-02-30"), None);
        assert_eq!(parse_iso_date("garbage"), None);
        assert_eq!(parse_iso_date("1992/01/01"), None);
    }

    #[test]
    fn consecutive_days_are_consecutive() {
        let mut prev = days_from_civil(1991, 12, 31);
        for &(y, m, d) in &[(1992, 1, 1), (1992, 1, 2), (1992, 1, 3)] {
            let cur = days_from_civil(y, m, d);
            assert_eq!(cur, prev + 1);
            prev = cur;
        }
    }
}
