//! Shared error type for the whole workspace.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the bitemporal engines, generators and query layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A named table does not exist.
    UnknownTable(String),
    /// A named column does not exist in the referenced schema.
    UnknownColumn(String),
    /// A table with this name already exists.
    TableExists(String),
    /// Primary-key (possibly temporal) uniqueness violation.
    DuplicateKey(String),
    /// A DML statement referenced a key that has no visible version.
    KeyNotFound(String),
    /// An operation received a value of the wrong [`crate::DataType`].
    TypeMismatch {
        /// What the schema or operator required.
        expected: String,
        /// What was actually supplied.
        found: String,
    },
    /// A period with `start >= end` (empty or inverted) where a non-empty
    /// period is required.
    EmptyPeriod(String),
    /// The requested point in system time precedes the retention window
    /// (models Oracle's Flashback retention limit, paper §2.4).
    BeyondRetention(String),
    /// A temporal feature is not supported by the engine under test
    /// (e.g. native application time on System C, paper §2.6).
    Unsupported(String),
    /// Attempt to modify data inside a transaction that was already closed.
    TransactionClosed,
    /// Archive (de)serialization failure.
    Archive(String),
    /// Catch-all for invalid arguments.
    Invalid(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownTable(t) => write!(f, "unknown table: {t}"),
            Error::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            Error::TableExists(t) => write!(f, "table already exists: {t}"),
            Error::DuplicateKey(k) => write!(f, "duplicate key: {k}"),
            Error::KeyNotFound(k) => write!(f, "key not found: {k}"),
            Error::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            Error::EmptyPeriod(p) => write!(f, "empty or inverted period: {p}"),
            Error::BeyondRetention(t) => write!(f, "system time beyond retention: {t}"),
            Error::Unsupported(m) => write!(f, "unsupported temporal feature: {m}"),
            Error::TransactionClosed => write!(f, "transaction already closed"),
            Error::Archive(m) => write!(f, "archive error: {m}"),
            Error::Invalid(m) => write!(f, "invalid argument: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Archive(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let e = Error::TypeMismatch {
            expected: "Int".into(),
            found: "Str".into(),
        };
        assert_eq!(e.to_string(), "type mismatch: expected Int, found Str");
        assert_eq!(
            Error::UnknownTable("orders".into()).to_string(),
            "unknown table: orders"
        );
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(matches!(e, Error::Archive(_)));
    }
}
