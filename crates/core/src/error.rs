//! Shared error type for the whole workspace.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the bitemporal engines, generators and query layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A named table does not exist.
    UnknownTable(String),
    /// A named column does not exist in the referenced schema.
    UnknownColumn(String),
    /// A table with this name already exists.
    TableExists(String),
    /// Primary-key (possibly temporal) uniqueness violation.
    DuplicateKey(String),
    /// A DML statement referenced a key that has no visible version.
    KeyNotFound(String),
    /// An operation received a value of the wrong [`crate::DataType`].
    TypeMismatch {
        /// What the schema or operator required.
        expected: String,
        /// What was actually supplied.
        found: String,
    },
    /// A period with `start >= end` (empty or inverted) where a non-empty
    /// period is required.
    EmptyPeriod(String),
    /// The requested point in system time precedes the retention window
    /// (models Oracle's Flashback retention limit, paper §2.4).
    BeyondRetention(String),
    /// A temporal feature is not supported by the engine under test
    /// (e.g. native application time on System C, paper §2.6).
    Unsupported(String),
    /// Attempt to modify data inside a transaction that was already closed.
    TransactionClosed,
    /// Archive (de)serialization failure.
    Archive(String),
    /// A morsel worker panicked; the scan was contained and aborted.
    WorkerPanicked {
        /// Index of the morsel whose worker panicked.
        morsel: u64,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// A benchmark query exceeded its wall-clock budget.
    QueryTimeout {
        /// The budget that was exceeded, in milliseconds.
        millis: u64,
    },
    /// A query panicked and was caught by the bench runner.
    Panicked(String),
    /// First-committer-wins validation failed: another transaction that
    /// committed after this one's snapshot was pinned wrote an overlapping
    /// key range. The transaction's buffered writes were discarded; the
    /// caller decides whether to re-run it against a fresh snapshot.
    /// Deliberately *not* [`Error::is_retryable`]: blind op-level retry
    /// (the loader's policy) would re-drive the same stale writes.
    Conflict(String),
    /// A retryable I/O condition (interrupted, timed out, would block).
    Transient(String),
    /// Catch-all for invalid arguments.
    Invalid(String),
    /// An engine-internal invariant was violated (a bug, not bad input).
    /// Surfaced as an error instead of a panic so a broken engine cannot
    /// take the whole benchmark run down with it.
    Internal(String),
}

impl Error {
    /// True for failures a caller may sensibly retry or continue past:
    /// transient I/O, timeouts, and contained panics. Data corruption
    /// ([`Error::Archive`]) and logic errors are not retryable.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Error::Transient(_)
                | Error::QueryTimeout { .. }
                | Error::WorkerPanicked { .. }
                | Error::Panicked(_)
        )
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownTable(t) => write!(f, "unknown table: {t}"),
            Error::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            Error::TableExists(t) => write!(f, "table already exists: {t}"),
            Error::DuplicateKey(k) => write!(f, "duplicate key: {k}"),
            Error::KeyNotFound(k) => write!(f, "key not found: {k}"),
            Error::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            Error::EmptyPeriod(p) => write!(f, "empty or inverted period: {p}"),
            Error::BeyondRetention(t) => write!(f, "system time beyond retention: {t}"),
            Error::Unsupported(m) => write!(f, "unsupported temporal feature: {m}"),
            Error::TransactionClosed => write!(f, "transaction already closed"),
            Error::Archive(m) => write!(f, "archive error: {m}"),
            Error::WorkerPanicked { morsel, message } => {
                write!(f, "worker panicked on morsel {morsel}: {message}")
            }
            Error::QueryTimeout { millis } => {
                write!(f, "query exceeded {millis} ms wall-clock budget")
            }
            Error::Panicked(m) => write!(f, "query panicked: {m}"),
            Error::Conflict(m) => write!(f, "write-write conflict: {m}"),
            Error::Transient(m) => write!(f, "transient I/O error: {m}"),
            Error::Invalid(m) => write!(f, "invalid argument: {m}"),
            Error::Internal(m) => write!(f, "internal invariant violated: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::Interrupted | ErrorKind::TimedOut | ErrorKind::WouldBlock => {
                Error::Transient(e.to_string())
            }
            _ => Error::Archive(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let e = Error::TypeMismatch {
            expected: "Int".into(),
            found: "Str".into(),
        };
        assert_eq!(e.to_string(), "type mismatch: expected Int, found Str");
        assert_eq!(
            Error::UnknownTable("orders".into()).to_string(),
            "unknown table: orders"
        );
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(matches!(e, Error::Archive(_)));
    }

    #[test]
    fn retryable_io_errors_become_transient() {
        for kind in [
            std::io::ErrorKind::Interrupted,
            std::io::ErrorKind::TimedOut,
            std::io::ErrorKind::WouldBlock,
        ] {
            let e: Error = std::io::Error::new(kind, "flaky").into();
            assert!(matches!(e, Error::Transient(_)), "{kind:?}");
            assert!(e.is_retryable());
        }
    }

    #[test]
    fn retryability_classification() {
        assert!(Error::QueryTimeout { millis: 5 }.is_retryable());
        assert!(Error::WorkerPanicked {
            morsel: 3,
            message: "x".into()
        }
        .is_retryable());
        assert!(Error::Panicked("x".into()).is_retryable());
        assert!(!Error::Archive("corrupt".into()).is_retryable());
        assert!(!Error::UnknownTable("t".into()).is_retryable());
        assert!(!Error::Internal("broken invariant".into()).is_retryable());
        // A serialization conflict must go back to the *transaction* level
        // (re-run against a fresh snapshot), never to a blind op retry.
        assert!(!Error::Conflict("k=3".into()).is_retryable());
    }
}
