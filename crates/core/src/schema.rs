//! Table schemas with temporal annotations.
//!
//! A [`TableDef`] describes the *logical* bitemporal table: its value
//! columns, primary key, and temporal class. The physical layout (current /
//! history partitioning, vertical splits, columnar storage) is entirely the
//! engine's business — that separation is the point of the benchmark.

use crate::{Error, Result};
use std::fmt;
use std::sync::Arc;

/// Data types storable in a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Double,
    /// Variable-length string.
    Str,
    /// Application-time date.
    Date,
    /// System-time timestamp (only appears in scan outputs and generated
    /// metadata columns, never in user value columns).
    SysTime,
}

/// A single column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (lower case by convention, e.g. `o_orderkey`).
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl Column {
    /// Creates a column definition.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Column {
        Column {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered list of columns with name lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Arc<[Column]>,
}

impl Schema {
    /// Creates a schema from column definitions.
    pub fn new(columns: Vec<Column>) -> Schema {
        Schema {
            columns: columns.into(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// All columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The column at `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Index of the column named `name`.
    pub fn col(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| Error::UnknownColumn(name.to_string()))
    }

    /// A new schema that is `self` followed by `other`.
    #[must_use]
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut cols = self.columns.to_vec();
        cols.extend_from_slice(&other.columns);
        Schema::new(cols)
    }

    /// A new schema with only the listed columns.
    #[must_use]
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema::new(indices.iter().map(|&i| self.columns[i].clone()).collect())
    }
}

/// How a table participates in the two time dimensions (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TemporalClass {
    /// No versioning at all (REGION, NATION).
    NonTemporal,
    /// System time only; the system time *also serves as* application time —
    /// the paper's "degenerated" table (SUPPLIER).
    Degenerate,
    /// Full bitemporal: system time plus one native application time
    /// (CUSTOMER, PART, PARTSUPP, LINEITEM). ORDERS additionally carries a
    /// second application time as plain date columns (`receivable_time_*`),
    /// exactly as the paper prescribes for systems with single-app-time
    /// support.
    Bitemporal,
}

/// Opaque handle to a created table inside an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The logical definition of a (possibly bitemporal) table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    /// Table name.
    pub name: String,
    /// Value columns (excluding period boundary columns; those are implicit).
    pub schema: Schema,
    /// Indices (into `schema`) of the primary-key columns.
    pub key: Vec<usize>,
    /// Temporal class.
    pub temporal: TemporalClass,
    /// Human-readable name of the native application-time dimension, if the
    /// class has one (e.g. `active_time` for ORDERS, `visible_time` for
    /// CUSTOMER). Purely descriptive; queries address periods positionally.
    pub app_time_name: Option<String>,
}

impl TableDef {
    /// Creates a table definition. Validates that key columns exist.
    pub fn new(
        name: impl Into<String>,
        schema: Schema,
        key: Vec<usize>,
        temporal: TemporalClass,
        app_time_name: Option<&str>,
    ) -> Result<TableDef> {
        let name = name.into();
        for &k in &key {
            if k >= schema.arity() {
                return Err(Error::Invalid(format!(
                    "key column {k} out of range for table {name}"
                )));
            }
        }
        if temporal == TemporalClass::Bitemporal && app_time_name.is_none() {
            return Err(Error::Invalid(format!(
                "bitemporal table {name} needs an application-time name"
            )));
        }
        Ok(TableDef {
            name,
            schema,
            key,
            temporal,
            app_time_name: app_time_name.map(str::to_string),
        })
    }

    /// True if the table versions rows along system time at all.
    pub fn has_system_time(&self) -> bool {
        self.temporal != TemporalClass::NonTemporal
    }

    /// True if the table has a native application-time dimension.
    pub fn has_app_time(&self) -> bool {
        self.temporal == TemporalClass::Bitemporal
    }

    /// The schema of scan outputs: value columns, then (if applicable)
    /// `app_start`/`app_end`, then `sys_start`/`sys_end`.
    pub fn scan_schema(&self) -> Schema {
        let mut cols = self.schema.columns().to_vec();
        if self.has_app_time() {
            cols.push(Column::new("app_start", DataType::Date));
            cols.push(Column::new("app_end", DataType::Date));
        }
        if self.has_system_time() {
            cols.push(Column::new("sys_start", DataType::SysTime));
            cols.push(Column::new("sys_end", DataType::SysTime));
        }
        Schema::new(cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("name", DataType::Str),
            Column::new("price", DataType::Double),
        ])
    }

    #[test]
    fn column_lookup() {
        let s = schema();
        assert_eq!(s.col("name").unwrap(), 1);
        assert!(matches!(s.col("missing"), Err(Error::UnknownColumn(_))));
        assert_eq!(s.arity(), 3);
        assert_eq!(s.column(2).dtype, DataType::Double);
    }

    #[test]
    fn concat_and_project() {
        let s = schema();
        let c = s.concat(&s);
        assert_eq!(c.arity(), 6);
        let p = s.project(&[2, 0]);
        assert_eq!(p.column(0).name, "price");
        assert_eq!(p.column(1).name, "id");
    }

    #[test]
    fn table_def_validation() {
        let ok = TableDef::new(
            "t",
            schema(),
            vec![0],
            TemporalClass::Bitemporal,
            Some("vt"),
        );
        assert!(ok.is_ok());
        let bad_key = TableDef::new("t", schema(), vec![9], TemporalClass::NonTemporal, None);
        assert!(bad_key.is_err());
        let missing_app = TableDef::new("t", schema(), vec![0], TemporalClass::Bitemporal, None);
        assert!(missing_app.is_err());
    }

    #[test]
    fn scan_schema_appends_periods() {
        let bt = TableDef::new(
            "t",
            schema(),
            vec![0],
            TemporalClass::Bitemporal,
            Some("vt"),
        )
        .unwrap();
        let names: Vec<_> = bt
            .scan_schema()
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        assert_eq!(
            names,
            vec![
                "id",
                "name",
                "price",
                "app_start",
                "app_end",
                "sys_start",
                "sys_end"
            ]
        );

        let nt = TableDef::new("t", schema(), vec![0], TemporalClass::NonTemporal, None).unwrap();
        assert_eq!(nt.scan_schema().arity(), 3);

        let deg = TableDef::new("t", schema(), vec![0], TemporalClass::Degenerate, None).unwrap();
        let names: Vec<_> = deg
            .scan_schema()
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        assert_eq!(names, vec!["id", "name", "price", "sys_start", "sys_end"]);
    }

    #[test]
    fn temporal_class_predicates() {
        let bt = TableDef::new(
            "t",
            schema(),
            vec![0],
            TemporalClass::Bitemporal,
            Some("vt"),
        )
        .unwrap();
        assert!(bt.has_app_time() && bt.has_system_time());
        let deg = TableDef::new("t", schema(), vec![0], TemporalClass::Degenerate, None).unwrap();
        assert!(!deg.has_app_time() && deg.has_system_time());
        let nt = TableDef::new("t", schema(), vec![0], TemporalClass::NonTemporal, None).unwrap();
        assert!(!nt.has_app_time() && !nt.has_system_time());
    }
}
