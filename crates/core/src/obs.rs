//! Scan observability: access-path traces, operator spans, and a
//! chrome-trace exporter.
//!
//! The paper explains every headline number by *access-path choices* — which
//! partition a query touches, whether an index is used, how many versions
//! are visited (§5.2, Figs. 5–9). This module lets the benchmark record that
//! explanation alongside the wall-clock numbers:
//!
//! * **Access-path traces** ([`ScanTrace`]) — one record per physical
//!   partition scanned: engine, partition, access path, rows
//!   visited/emitted, versions pruned, index probes, morsels, worker count,
//!   and the monotonic time spent.
//! * **Operator spans** ([`Span`]) — named, categorized durations recorded
//!   by the engine, query, and SQL layers (scan, temporal filter, temporal
//!   join, temporal aggregation, sort/merge).
//! * **Chrome-trace export** ([`TraceLog::to_chrome_trace`]) — the JSON
//!   event format `about:tracing` and Perfetto load directly.
//!
//! # Zero cost when disabled
//!
//! Recording is per-thread and **off by default**. Every instrumentation
//! point first consults a thread-local flag ([`is_enabled`]) and does *no*
//! allocation, formatting, or clock reads while tracing is disabled — the
//! equivalence tests assert that a traced scan returns byte-identical rows
//! and metrics to an untraced one. Timings use [`std::time::Instant`], so
//! they are monotonic.
//!
//! Morsel workers run on scoped threads whose recorders stay disabled; the
//! coordinating thread records the aggregate per-partition trace, so a scan
//! produces the same trace for every worker count.
//!
//! ```
//! use bitempo_core::obs;
//!
//! obs::enable();
//! {
//!     let mut span = obs::span("query", "filter");
//!     span.arg_with("rows", || "42".to_string());
//! }
//! let log = obs::disable();
//! assert_eq!(log.spans.len(), 1);
//! assert!(log.to_chrome_trace().contains("\"traceEvents\""));
//! assert!(!obs::is_enabled());
//! ```

use std::cell::RefCell;
use std::fmt::Write as _;
use std::time::Instant;

/// One timed operator span, relative to the trace epoch ([`enable`] time).
#[derive(Debug, Clone)]
pub struct Span {
    /// Category (chrome-trace `cat`): `"engine"`, `"exec"`, `"index"`,
    /// `"query"`, `"temporal"`, `"sql"`.
    pub cat: &'static str,
    /// Span name, e.g. `"temporal_join"` or `"System A scan orders"`.
    pub name: String,
    /// Start offset from the trace epoch, nanoseconds (monotonic clock).
    pub start_nanos: u64,
    /// Duration, nanoseconds.
    pub dur_nanos: u64,
    /// Free-form key/value annotations (chrome-trace `args`).
    pub args: Vec<(String, String)>,
}

/// The access-path trace of one physical partition scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanTrace {
    /// Engine display name ("System A" .. "System D").
    pub engine: String,
    /// Table name.
    pub table: String,
    /// Physical partition label ("current", "history", "staging", "all").
    pub partition: String,
    /// Rendered access path ("full-scan(1)", "btree(ix_...)", ...).
    pub access: String,
    /// Version records examined.
    pub rows_visited: u64,
    /// Qualifying rows appended to the scan output.
    pub rows_emitted: u64,
    /// Examined versions rejected by the temporal specs or predicates.
    pub versions_pruned: u64,
    /// Slots resolved through an index probe.
    pub index_probes: u64,
    /// Probed slots that survived every residual filter (index *helped*).
    pub index_hits: u64,
    /// Index entries examined internally while probing.
    pub index_node_visits: u64,
    /// Morsels dispatched (0 on index paths).
    pub morsels: u64,
    /// Rows the planner estimated the chosen path would visit — compare
    /// against `rows_visited` for per-scan estimate error.
    pub planned_rows: u64,
    /// Configured worker threads for the scan.
    pub workers: u64,
    /// Start offset from the trace epoch, nanoseconds.
    pub start_nanos: u64,
    /// Wall time spent scanning this partition, nanoseconds.
    pub dur_nanos: u64,
}

/// Everything one traced region recorded: spans plus access-path traces.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    /// Operator spans, in completion order.
    pub spans: Vec<Span>,
    /// Per-partition access-path traces, in scan order.
    pub scans: Vec<ScanTrace>,
}

impl TraceLog {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.scans.is_empty()
    }

    /// Merges `other`'s events into `self` (timestamps are kept as-is, so
    /// only merge logs taken from the same [`enable`] epoch).
    pub fn merge(&mut self, other: TraceLog) {
        self.spans.extend(other.spans);
        self.scans.extend(other.scans);
    }

    /// Renders the log in the chrome-trace JSON event format, loadable in
    /// `about:tracing` and [Perfetto](https://ui.perfetto.dev). Spans become
    /// complete (`"ph":"X"`) duration events; scan traces become duration
    /// events in the `"scan"` category with the access-path counters as
    /// `args`.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut push_event = |out: &mut String,
                              cat: &str,
                              name: &str,
                              start: u64,
                              dur: u64,
                              args: &[(String, String)]| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            let _ = write!(
                    out,
                    "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":1,\"tid\":1,\"args\":{{",
                    json_string(name),
                    json_string(cat),
                    start / 1_000,
                    start % 1_000,
                    dur / 1_000,
                    dur % 1_000,
                );
            for (i, (k, v)) in args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", json_string(k), json_string(v));
            }
            out.push_str("}}");
        };
        for s in &self.spans {
            push_event(
                &mut out,
                s.cat,
                &s.name,
                s.start_nanos,
                s.dur_nanos,
                &s.args,
            );
        }
        for t in &self.scans {
            let name = format!("{} scan {}/{}", t.engine, t.table, t.partition);
            let args = vec![
                ("access".to_string(), t.access.clone()),
                ("rows_visited".to_string(), t.rows_visited.to_string()),
                ("rows_emitted".to_string(), t.rows_emitted.to_string()),
                ("versions_pruned".to_string(), t.versions_pruned.to_string()),
                ("index_probes".to_string(), t.index_probes.to_string()),
                ("index_hits".to_string(), t.index_hits.to_string()),
                (
                    "index_node_visits".to_string(),
                    t.index_node_visits.to_string(),
                ),
                ("morsels".to_string(), t.morsels.to_string()),
                ("planned_rows".to_string(), t.planned_rows.to_string()),
                ("workers".to_string(), t.workers.to_string()),
            ];
            push_event(&mut out, "scan", &name, t.start_nanos, t.dur_nanos, &args);
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

/// Escapes `s` as a JSON string literal (with quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Recorder {
    enabled: bool,
    epoch: Instant,
    log: TraceLog,
}

thread_local! {
    static RECORDER: RefCell<Recorder> = RefCell::new(Recorder {
        enabled: false,
        epoch: Instant::now(),
        log: TraceLog::default(),
    });
}

/// Enables tracing on this thread, clearing any previous log and resetting
/// the trace epoch. Idempotent (re-enabling also clears).
pub fn enable() {
    RECORDER.with(|r| {
        let mut r = r.borrow_mut();
        r.enabled = true;
        r.epoch = Instant::now();
        r.log = TraceLog::default();
    });
}

/// Disables tracing on this thread and returns everything recorded since
/// [`enable`]. Returns an empty log when tracing was not enabled.
pub fn disable() -> TraceLog {
    RECORDER.with(|r| {
        let mut r = r.borrow_mut();
        r.enabled = false;
        std::mem::take(&mut r.log)
    })
}

/// True when tracing is enabled on this thread. Instrumentation points guard
/// all allocation and clock work behind this check.
pub fn is_enabled() -> bool {
    RECORDER.with(|r| r.borrow().enabled)
}

/// Nanoseconds since the trace epoch.
fn epoch_nanos(epoch: Instant) -> u64 {
    epoch.elapsed().as_nanos() as u64
}

/// An in-flight operator span; records itself into the thread-local log on
/// drop. Inert (no clock reads, no allocation) while tracing is disabled.
#[must_use = "a span measures the scope it is bound to"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    cat: &'static str,
    name: String,
    start_nanos: u64,
    args: Vec<(String, String)>,
}

impl SpanGuard {
    /// Attaches an annotation; `value` is only invoked when the span is
    /// live, so callers pay nothing while tracing is disabled.
    pub fn arg_with(&mut self, key: &str, value: impl FnOnce() -> String) {
        if let Some(active) = &mut self.active {
            active.args.push((key.to_string(), value()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        RECORDER.with(|r| {
            let mut r = r.borrow_mut();
            if !r.enabled {
                return;
            }
            let end = epoch_nanos(r.epoch);
            r.log.spans.push(Span {
                cat: active.cat,
                name: active.name,
                start_nanos: active.start_nanos,
                dur_nanos: end.saturating_sub(active.start_nanos),
                args: active.args,
            });
        });
    }
}

/// Opens a span with a static-ish name. The name is only copied when
/// tracing is enabled.
pub fn span(cat: &'static str, name: &str) -> SpanGuard {
    span_dyn(cat, || name.to_string())
}

/// Opens a span whose name is built lazily — `name` is only invoked when
/// tracing is enabled, so `format!` costs nothing on the disabled path.
/// The `RefCell` borrow is released before `name` runs, so the closure may
/// itself call into this module.
pub fn span_dyn(cat: &'static str, name: impl FnOnce() -> String) -> SpanGuard {
    let epoch = RECORDER.with(|r| {
        let r = r.borrow();
        r.enabled.then_some(r.epoch)
    });
    let active = epoch.map(|epoch| ActiveSpan {
        cat,
        name: name(),
        start_nanos: epoch_nanos(epoch),
        args: Vec::new(),
    });
    SpanGuard { active }
}

/// Nanoseconds since the trace epoch, or `None` when tracing is disabled —
/// the building block for callers that assemble a [`ScanTrace`] themselves.
pub fn trace_clock() -> Option<u64> {
    RECORDER.with(|r| {
        let r = r.borrow();
        r.enabled.then(|| epoch_nanos(r.epoch))
    })
}

/// Records an access-path trace. `build` is only invoked when tracing is
/// enabled, and runs outside the recorder borrow so it may itself call into
/// this module (e.g. [`trace_clock`]).
pub fn record_scan(build: impl FnOnce() -> ScanTrace) {
    if !is_enabled() {
        return;
    }
    let trace = build();
    RECORDER.with(|r| {
        let mut r = r.borrow_mut();
        if r.enabled {
            r.log.scans.push(trace);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_scan(start: u64) -> ScanTrace {
        ScanTrace {
            engine: "System A".into(),
            table: "orders".into(),
            partition: "current".into(),
            access: "full-scan(1)".into(),
            rows_visited: 100,
            rows_emitted: 10,
            versions_pruned: 90,
            index_probes: 0,
            index_hits: 0,
            index_node_visits: 0,
            morsels: 1,
            planned_rows: 100,
            workers: 4,
            start_nanos: start,
            dur_nanos: 1_500,
        }
    }

    #[test]
    fn disabled_by_default_and_inert() {
        assert!(!is_enabled());
        assert!(trace_clock().is_none());
        {
            let mut g = span("query", "noop");
            g.arg_with("k", || panic!("must not be invoked while disabled"));
        }
        record_scan(|| panic!("must not be invoked while disabled"));
        assert!(disable().is_empty());
    }

    #[test]
    fn spans_and_scans_are_recorded() {
        enable();
        {
            let mut g = span("engine", "scan");
            g.arg_with("rows", || "7".to_string());
            let _inner = span_dyn("index", || format!("probe {}", 3));
        }
        record_scan(|| sample_scan(trace_clock().unwrap()));
        let log = disable();
        assert_eq!(log.spans.len(), 2);
        assert_eq!(log.scans.len(), 1);
        // Inner span completed (and was pushed) first.
        assert_eq!(log.spans[0].name, "probe 3");
        assert_eq!(log.spans[1].name, "scan");
        assert_eq!(
            log.spans[1].args,
            vec![("rows".to_string(), "7".to_string())]
        );
        assert!(log.spans[1].start_nanos <= log.spans[0].start_nanos);
        // Disabling again yields nothing new.
        assert!(disable().is_empty());
    }

    #[test]
    fn reenabling_clears_previous_log() {
        enable();
        let _ = span("query", "first");
        enable();
        drop(span("query", "second"));
        let log = disable();
        assert_eq!(log.spans.len(), 1);
        assert_eq!(log.spans[0].name, "second");
    }

    #[test]
    fn chrome_trace_shape() {
        let mut log = TraceLog::default();
        log.spans.push(Span {
            cat: "temporal",
            name: "join \"q\"".into(),
            start_nanos: 2_500,
            dur_nanos: 10_000,
            args: vec![("rows".into(), "3".into())],
        });
        log.scans.push(sample_scan(0));
        let json = log.to_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":2.500"), "{json}");
        assert!(json.contains("\"dur\":10.000"), "{json}");
        assert!(json.contains("join \\\"q\\\""), "quotes escaped: {json}");
        assert!(json.contains("\"access\":\"full-scan(1)\""));
        assert!(json.contains("System A scan orders/current"));
        // Braces/brackets balance — the cheap structural validity check.
        for (open, close) in [('{', '}'), ('[', ']')] {
            let opens = json.matches(open).count();
            let closes = json.matches(close).count();
            assert_eq!(opens, closes, "unbalanced {open}{close}");
        }
    }

    #[test]
    fn merge_combines_logs() {
        let mut a = TraceLog::default();
        a.scans.push(sample_scan(0));
        let mut b = TraceLog::default();
        b.scans.push(sample_scan(10));
        a.merge(b);
        assert_eq!(a.scans.len(), 2);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\ny\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
