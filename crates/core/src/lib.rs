//! # bitempo-core
//!
//! Foundation types for the TPC-BiH bitemporal benchmark suite: the bitemporal
//! time model (system time and application time as half-open periods), typed
//! values and rows, table schemas with temporal column annotations, a
//! deterministic PCG random number generator used by the data generators, and
//! the shared error type.
//!
//! ## The bitemporal data model
//!
//! Following TSQL2 / SQL:2011 (and the paper's terminology), every versioned
//! fact carries up to two orthogonal time dimensions:
//!
//! * **System time** ([`SysTime`], [`SysPeriod`]) — *when the database knew
//!   the fact*. Immutable, assigned by the engine at transaction commit.
//!   Modelled here as a monotone logical commit timestamp.
//! * **Application time** ([`AppDate`], [`AppPeriod`]) — *when the fact was
//!   true in the real world*. Supplied by the application and freely
//!   updatable (sequenced semantics).
//!
//! All periods are half-open `[start, end)`. A system period whose end is
//! [`SysTime::MAX`] denotes the *current* (still visible) version; an
//! application period ending at [`AppDate::MAX`] is valid "until forever".

pub mod crc;
pub mod date;
pub mod error;
pub mod fault;
pub mod key;
pub mod obs;
pub mod rng;
pub mod row;
pub mod schema;
pub mod time;
pub mod value;

pub use crc::{crc32, Crc32};
pub use error::{Error, Result};
pub use fault::{FaultKind, FaultPlan, FaultyReader, FaultyWriter};
pub use key::Key;
pub use rng::Pcg32;
pub use row::Row;
pub use schema::{Column, DataType, Schema, TableDef, TableId, TemporalClass};
pub use time::{AppDate, AppPeriod, Period, SysPeriod, SysTime};
pub use value::Value;
