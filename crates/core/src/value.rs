//! The dynamically-typed cell value used by rows, keys and expressions.

use crate::time::{AppDate, SysTime};
use crate::{DataType, Error};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A single cell value.
///
/// Strings are reference-counted so that copying rows between the current
/// and history partitions of an engine does not reallocate the payload —
/// the same trick every system in the paper plays with its own buffers.
/// Floats order and hash by [`f64::total_cmp`] semantics, which gives the
/// deterministic sort orders the cross-engine equivalence oracle needs.
#[derive(Debug, Clone, Default)]
pub enum Value {
    /// SQL NULL.
    #[default]
    Null,
    /// 64-bit integer (covers all TPC-H key and quantity columns).
    Int(i64),
    /// 64-bit float (prices, discounts; TPC-H decimals are exact in f64
    /// at the scales generated, and all engines use the same representation).
    Double(f64),
    /// Variable-length string.
    Str(Arc<str>),
    /// An application-time date.
    Date(AppDate),
    /// A system-time timestamp (exposed to queries e.g. by K1's
    /// `sys_time_start` output column).
    SysTime(SysTime),
}

impl Value {
    /// Constructs a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The [`DataType`] of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Double(_) => Some(DataType::Double),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
            Value::SysTime(_) => Some(DataType::SysTime),
        }
    }

    /// True for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The integer payload, or a type error.
    pub fn as_int(&self) -> crate::Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(type_err("Int", other)),
        }
    }

    /// The float payload (ints widen), or a type error.
    pub fn as_double(&self) -> crate::Result<f64> {
        match self {
            Value::Double(d) => Ok(*d),
            Value::Int(i) => Ok(*i as f64),
            other => Err(type_err("Double", other)),
        }
    }

    /// The string payload, or a type error.
    pub fn as_str(&self) -> crate::Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(type_err("Str", other)),
        }
    }

    /// The date payload, or a type error.
    pub fn as_date(&self) -> crate::Result<AppDate> {
        match self {
            Value::Date(d) => Ok(*d),
            other => Err(type_err("Date", other)),
        }
    }

    /// The system-time payload, or a type error.
    pub fn as_sys_time(&self) -> crate::Result<SysTime> {
        match self {
            Value::SysTime(t) => Ok(*t),
            other => Err(type_err("SysTime", other)),
        }
    }

    /// Rank used to order values of different types (NULLs first, then by
    /// type tag). Only meaningful for canonical result ordering.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Double(_) => 2,
            Value::Str(_) => 3,
            Value::Date(_) => 4,
            Value::SysTime(_) => 5,
        }
    }
}

fn type_err(expected: &str, found: &Value) -> Error {
    Error::TypeMismatch {
        expected: expected.to_string(),
        found: found
            .data_type()
            .map_or_else(|| "Null".to_string(), |t| format!("{t:?}")),
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            // Mixed numerics compare numerically so that expression results
            // (Int) and stored values (Double) group together.
            (Int(a), Double(b)) => (*a as f64).total_cmp(b),
            (Double(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (SysTime(a), SysTime(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Int(i) => {
                // Hash ints as doubles when they are integral-valued so that
                // Int(2) and Double(2.0) (which compare equal) hash equally.
                state.write_u8(1);
                (*i as f64).to_bits().hash(state);
            }
            Value::Double(d) => {
                state.write_u8(1);
                d.to_bits().hash(state);
            }
            Value::Str(s) => {
                state.write_u8(3);
                s.hash(state);
            }
            Value::Date(d) => {
                state.write_u8(4);
                d.0.hash(state);
            }
            Value::SysTime(t) => {
                state.write_u8(5);
                t.0.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d:.2}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{d}"),
            Value::SysTime(t) => write!(f, "{t}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}
impl From<AppDate> for Value {
    fn from(v: AppDate) -> Self {
        Value::Date(v)
    }
}
impl From<SysTime> for Value {
    fn from(v: SysTime) -> Self {
        Value::SysTime(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn ordering_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::str("a") < Value::str("b"));
        assert!(Value::Date(AppDate(1)) < Value::Date(AppDate(2)));
        assert!(Value::Double(1.5) < Value::Double(2.5));
    }

    #[test]
    fn mixed_numeric_equality_and_hash() {
        assert_eq!(Value::Int(2), Value::Double(2.0));
        assert_eq!(hash_of(&Value::Int(2)), hash_of(&Value::Double(2.0)));
        assert!(Value::Int(2) < Value::Double(2.5));
        assert!(Value::Double(1.5) < Value::Int(2));
    }

    #[test]
    fn nulls_order_first() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn accessors_enforce_types() {
        assert_eq!(Value::Int(7).as_int().unwrap(), 7);
        assert_eq!(Value::Int(7).as_double().unwrap(), 7.0);
        assert!(Value::str("x").as_int().is_err());
        assert!(Value::Null.as_date().is_err());
        assert_eq!(
            Value::SysTime(SysTime(3)).as_sys_time().unwrap(),
            SysTime(3)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Double(1.5).to_string(), "1.50");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(
            Value::Date(AppDate::from_ymd(1995, 1, 2)).to_string(),
            "1995-01-02"
        );
    }

    #[test]
    fn nan_totally_ordered() {
        let nan = Value::Double(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(Value::Double(f64::INFINITY) < nan);
    }
}
