//! CRC-32 (IEEE 802.3, the polynomial used by zip/gzip/PNG), implemented
//! with a compile-time lookup table so the archive checksums need no
//! external crate. Streaming via [`Crc32`], one-shot via [`crc32`].

const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// A streaming CRC-32 hasher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ u32::from(b)) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ TABLE[idx];
        }
    }

    /// The checksum of everything fed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut h = Crc32::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = b"bitemporal archive payload".to_vec();
        let clean = crc32(&data);
        for i in 0..data.len() {
            data[i] ^= 0x01;
            assert_ne!(crc32(&data), clean, "flip at byte {i} undetected");
            data[i] ^= 0x01;
        }
    }
}
