//! The Timeline: a system-time visibility index.
//!
//! System time only ever moves forward, and a version's visibility changes
//! at exactly two moments — when it is recorded (*activation*) and when it
//! is superseded or deleted (*invalidation*). The Timeline therefore stores
//! history as an **append-only event log** in causal order, and cuts a
//! **checkpoint version-set** (the sorted set of visible slots) every
//! `checkpoint_every` events. A probe "visible at system version S"
//! restores the nearest checkpoint whose events all precede `S` and replays
//! the bounded slice of events up to `S` — work proportional to the answer
//! plus the checkpoint interval, not to the length of history. That is the
//! sublinearity the benchmarked 2014 systems lacked (paper Figs 3, 9, 10).
//!
//! Correctness does not depend on events arriving in time order: replay is
//! causal (append order), so a bulk load with manual, out-of-order system
//! times stays correct — the log merely loses the binary-search bound. To
//! keep such logs probeable, every checkpoint-aligned segment of the log
//! also records its min/max event time, and replays skip whole segments
//! whose time window cannot affect the probe. History partitions indexed at
//! *close* time (activation times lag close order) rely on this.

use bitempo_core::{SysPeriod, SysTime};
use std::collections::BTreeSet;

/// Default checkpoint interval: small enough to bound replays tightly,
/// large enough that checkpoint memory stays a fraction of the event log.
pub const DEFAULT_CHECKPOINT_EVERY: usize = 256;

/// What happened to a slot's visibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The version became visible.
    Activate,
    /// The version stopped being visible (half-open: not visible *at* the
    /// event time).
    Invalidate,
}

/// One visibility change in the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Commit time the change took effect.
    pub at: SysTime,
    /// Partition-local slot of the affected version.
    pub slot: u64,
    /// Activation or invalidation.
    pub kind: EventKind,
}

/// The visible slot set after applying a prefix of the log.
#[derive(Debug, Clone)]
struct Checkpoint {
    /// Number of log events this set reflects.
    upto: usize,
    /// Maximum event time in that prefix: the checkpoint serves a probe at
    /// `S` only when `max_at <= S`, so every reflected event applies.
    max_at: SysTime,
    /// Sorted visible slots.
    visible: Vec<u64>,
}

/// The system-time visibility index. See the module docs.
#[derive(Debug, Clone)]
pub struct Timeline {
    events: Vec<Event>,
    checkpoints: Vec<Checkpoint>,
    every: usize,
    /// `(min, max)` event time per checkpoint-aligned log segment
    /// (`events[k * every .. (k + 1) * every]`), for segment skipping in
    /// non-monotone replays.
    seg_bounds: Vec<(SysTime, SysTime)>,
    /// Running mirror of the visible set, snapshot at checkpoint cuts.
    live: BTreeSet<u64>,
    /// Running maximum event time.
    max_at: SysTime,
    /// True while events have arrived in non-decreasing time order, which
    /// allows replays to stop at a binary-searched prefix.
    monotone: bool,
    /// Last invalidation time per slot, kept in debug builds only to back
    /// the causal-reuse assertion in [`Timeline::activate`]. Release
    /// builds pay nothing for it (the assertion compiles out).
    #[cfg(debug_assertions)]
    closed_at: std::collections::BTreeMap<u64, SysTime>,
}

impl Default for Timeline {
    fn default() -> Timeline {
        Timeline::new(DEFAULT_CHECKPOINT_EVERY)
    }
}

impl Timeline {
    /// Creates an empty timeline cutting a checkpoint every
    /// `checkpoint_every` events (clamped to at least 1).
    pub fn new(checkpoint_every: usize) -> Timeline {
        Timeline {
            events: Vec::new(),
            checkpoints: Vec::new(),
            every: checkpoint_every.max(1),
            seg_bounds: Vec::new(),
            live: BTreeSet::new(),
            max_at: SysTime::ZERO,
            monotone: true,
            #[cfg(debug_assertions)]
            closed_at: std::collections::BTreeMap::new(),
        }
    }

    /// Records that `slot` became visible at `at`.
    ///
    /// **Slot-reuse contract:** a slot may be re-activated only *causally* —
    /// at or after its last invalidation. Re-activating earlier would make
    /// a probe pinned between the two times surface the recycled slot's
    /// *new* lifetime as if it were the old version's: exactly the reader
    /// anomaly the MVCC layer's pinned snapshots must never observe. The
    /// heap never recycles slots today (tombstones only), so this is an
    /// invariant assertion, checked in debug builds.
    pub fn activate(&mut self, slot: u64, at: SysTime) {
        #[cfg(debug_assertions)]
        if let Some(&closed) = self.closed_at.get(&slot) {
            debug_assert!(
                at >= closed,
                "non-causal slot reuse: slot {slot} re-activated at {at} before its \
                 last invalidation at {closed}; a reader pinned to a snapshot between \
                 the two would see the recycled slot's new lifetime"
            );
        }
        self.live.insert(slot);
        self.push(Event {
            at,
            slot,
            kind: EventKind::Activate,
        });
    }

    /// Records that `slot` stopped being visible at `at`.
    pub fn invalidate(&mut self, slot: u64, at: SysTime) {
        #[cfg(debug_assertions)]
        {
            let last = self.closed_at.entry(slot).or_insert(at);
            *last = (*last).max(at);
        }
        self.live.remove(&slot);
        self.push(Event {
            at,
            slot,
            kind: EventKind::Invalidate,
        });
    }

    fn push(&mut self, e: Event) {
        if e.at < self.max_at {
            self.monotone = false;
        }
        self.max_at = self.max_at.max(e.at);
        self.events.push(e);
        let seg = (self.events.len() - 1) / self.every;
        match self.seg_bounds.get_mut(seg) {
            Some((lo, hi)) => {
                *lo = (*lo).min(e.at);
                *hi = (*hi).max(e.at);
            }
            None => self.seg_bounds.push((e.at, e.at)),
        }
        if self.events.len().is_multiple_of(self.every) {
            self.checkpoints.push(Checkpoint {
                upto: self.events.len(),
                max_at: self.max_at,
                visible: self.live.iter().copied().collect(),
            });
        }
    }

    /// Number of events recorded.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Number of checkpoint version-sets cut so far.
    pub fn checkpoint_count(&self) -> usize {
        self.checkpoints.len()
    }

    /// Approximate resident bytes of the log, checkpoints and live mirror.
    pub fn memory_bytes(&self) -> u64 {
        let events = self.events.len() * std::mem::size_of::<Event>();
        let ckpts: usize = self
            .checkpoints
            .iter()
            .map(|c| std::mem::size_of::<Checkpoint>() + c.visible.len() * 8)
            .sum();
        (events + ckpts + self.live.len() * 8) as u64
    }

    /// The nearest usable checkpoint for a probe at `at`: the latest whose
    /// whole prefix applies. Returns `(events_reflected, start_set)`.
    fn restore(&self, at: SysTime, visits: &mut u64) -> (usize, BTreeSet<u64>) {
        let ci = self.checkpoints.partition_point(|c| c.max_at <= at);
        match ci.checked_sub(1).and_then(|i| self.checkpoints.get(i)) {
            Some(c) => {
                *visits += c.visible.len() as u64;
                (c.upto, c.visible.iter().copied().collect())
            }
            None => (0, BTreeSet::new()),
        }
    }

    /// Walks `events[upto..]` segment by segment, invoking `f` on every
    /// event in segments whose `(min, max)` time window passes `seg_ok`,
    /// and skipping the rest wholesale. `seg_ok` must be conservative:
    /// true whenever any event in the window could matter to the probe.
    fn replay_segments(
        &self,
        upto: usize,
        seg_ok: impl Fn(SysTime, SysTime) -> bool,
        cost: &mut crate::ProbeCost,
        mut f: impl FnMut(&Event),
    ) {
        let mut pos = upto;
        while pos < self.events.len() {
            let seg = pos / self.every;
            let seg_end = ((seg + 1) * self.every).min(self.events.len());
            // One visit to consult the segment's time bounds.
            cost.node_visits += 1;
            let ok = self
                .seg_bounds
                .get(seg)
                .is_none_or(|&(lo, hi)| seg_ok(lo, hi));
            if ok {
                for e in self.events.get(pos..seg_end).unwrap_or(&[]) {
                    cost.node_visits += 1;
                    f(e);
                }
            }
            pos = seg_end;
        }
    }

    /// Number of events in segments passing `seg_ok` that also pass
    /// `event_ok`. Counting individual events (rather than whole segments)
    /// keeps planner estimates tight on non-monotone logs, where a segment
    /// holding one early activation would otherwise count wholesale.
    fn count_events(
        &self,
        upto: usize,
        seg_ok: impl Fn(SysTime, SysTime) -> bool,
        event_ok: impl Fn(&Event) -> bool,
    ) -> usize {
        let mut n = 0;
        let mut pos = upto;
        while pos < self.events.len() {
            let seg = pos / self.every;
            let seg_end = ((seg + 1) * self.every).min(self.events.len());
            let ok = self
                .seg_bounds
                .get(seg)
                .is_none_or(|&(lo, hi)| seg_ok(lo, hi));
            if ok {
                n += self
                    .events
                    .get(pos..seg_end)
                    .unwrap_or(&[])
                    .iter()
                    .filter(|e| event_ok(e))
                    .count();
            }
            pos = seg_end;
        }
        n
    }

    /// Slots visible at system version `at`: activated at or before `at`
    /// and not invalidated at or before it. `SysTime::MAX` yields the
    /// current snapshot (never-invalidated slots). Sorted ascending.
    pub fn visible_at(&self, at: SysTime, cost: &mut crate::ProbeCost) -> Vec<u64> {
        let (upto, mut set) = self.restore(at, &mut cost.node_visits);
        let apply = |e: &Event, set: &mut BTreeSet<u64>| {
            if e.at > at {
                return;
            }
            match e.kind {
                EventKind::Activate => {
                    set.insert(e.slot);
                }
                EventKind::Invalidate => {
                    set.remove(&e.slot);
                }
            }
        };
        if self.monotone {
            let hi = self.events.partition_point(|e| e.at <= at);
            for e in self.events.iter().take(hi).skip(upto) {
                cost.node_visits += 1;
                apply(e, &mut set);
            }
        } else {
            // Segments whose earliest event is already past `at` cannot
            // change visibility at `at`.
            self.replay_segments(upto, |lo, _| lo <= at, cost, |e| apply(e, &mut set));
        }
        set.into_iter().collect()
    }

    /// Candidate slots for versions whose system period overlaps `range`:
    /// everything visible when the range opens, plus everything activated
    /// inside it. A superset of the true overlap set (degenerate periods
    /// are filtered by the caller's authoritative re-check). Sorted
    /// ascending.
    pub fn visible_during(&self, range: &SysPeriod, cost: &mut crate::ProbeCost) -> Vec<u64> {
        let mut set: BTreeSet<u64> = self.visible_at(range.start, cost).into_iter().collect();
        if self.monotone {
            let lo = self.events.partition_point(|e| e.at < range.start);
            let hi = self.events.partition_point(|e| e.at < range.end);
            for e in self.events.iter().take(hi).skip(lo) {
                cost.node_visits += 1;
                if e.kind == EventKind::Activate {
                    set.insert(e.slot);
                }
            }
        } else {
            self.replay_segments(
                0,
                |lo, hi| lo < range.end && hi >= range.start,
                cost,
                |e| {
                    if e.kind == EventKind::Activate && range.contains_point(e.at) {
                        set.insert(e.slot);
                    }
                },
            );
        }
        set.into_iter().collect()
    }

    /// Upper bound on the number of slots [`Timeline::visible_at`] can
    /// return: the restored checkpoint size plus one per activation the
    /// replay could insert. Only activations at or before `at` count —
    /// invalidations and later events can never grow the visible set.
    pub fn estimate_at(&self, at: SysTime) -> usize {
        if at >= self.max_at {
            // Every recorded event applies, so the live mirror *is* the
            // visible set — exact, and O(1) for the common current-snapshot
            // probe.
            return self.live.len();
        }
        let ci = self.checkpoints.partition_point(|c| c.max_at <= at);
        let (upto, base) = match ci.checked_sub(1).and_then(|i| self.checkpoints.get(i)) {
            Some(c) => (c.upto, c.visible.len()),
            None => (0, 0),
        };
        let replay = self.count_events(
            upto,
            |lo, _| lo <= at,
            |e| e.kind == EventKind::Activate && e.at <= at,
        );
        base + replay
    }

    /// Upper bound on [`Timeline::visible_during`] output: everything
    /// possibly visible as the range opens, plus one per activation that
    /// lands inside the range.
    pub fn estimate_during(&self, range: &SysPeriod) -> usize {
        let activations = self.count_events(
            0,
            |lo, hi| lo < range.end && hi >= range.start,
            |e| e.kind == EventKind::Activate && range.contains_point(e.at),
        );
        self.estimate_at(range.start) + activations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitempo_core::Period;

    fn sysp(a: u64, b: u64) -> SysPeriod {
        Period::new(SysTime(a), SysTime(b))
    }

    /// Applies version periods in causal order and checks `visible_at`
    /// against the naive per-version oracle at every probe point.
    fn check_against_oracle(versions: &[(u64, SysPeriod)], every: usize, probes: &[u64]) {
        let mut tl = Timeline::new(every);
        for &(slot, sys) in versions {
            tl.activate(slot, sys.start);
            if !sys.is_current() {
                tl.invalidate(slot, sys.end);
            }
        }
        for &p in probes {
            let at = SysTime(p);
            let mut cost = crate::ProbeCost::default();
            let got = tl.visible_at(at, &mut cost);
            let mut want: Vec<u64> = versions
                .iter()
                .filter(|(_, sys)| sys.contains_point(at))
                .map(|&(slot, _)| slot)
                .collect();
            want.sort_unstable();
            want.dedup();
            assert_eq!(got, want, "visible_at(t{p}) with checkpoint_every={every}");
        }
    }

    #[test]
    fn visibility_matches_oracle_across_checkpoint_intervals() {
        let versions: Vec<(u64, SysPeriod)> = (0..50u64)
            .map(|i| {
                if i % 7 == 0 {
                    (i, SysPeriod::since(SysTime(i + 1)))
                } else {
                    (i, sysp(i + 1, i + 1 + (i % 5) * 3))
                }
            })
            .collect();
        let probes: Vec<u64> = (0..70).collect();
        for every in [1, 2, 3, 8, 64, 1024] {
            check_against_oracle(&versions, every, &probes);
        }
    }

    #[test]
    fn degenerate_same_instant_period_is_never_visible() {
        // A version created and superseded in the same transaction has the
        // empty period [s, s): half-open, so no probe may surface it.
        check_against_oracle(&[(0, sysp(5, 5)), (1, sysp(5, 9))], 1, &[4, 5, 6, 9]);
    }

    #[test]
    fn slot_reuse_follows_causal_order() {
        let mut tl = Timeline::new(2);
        tl.activate(0, SysTime(5));
        tl.invalidate(0, SysTime(8));
        tl.activate(0, SysTime(8)); // slot reused at the same instant
        let mut cost = crate::ProbeCost::default();
        assert_eq!(tl.visible_at(SysTime(7), &mut cost), vec![0]);
        assert_eq!(tl.visible_at(SysTime(8), &mut cost), vec![0]);
        assert!(tl.visible_at(SysTime(4), &mut cost).is_empty());
    }

    /// The satellite regression, positive half: *causal* reuse (new
    /// lifetime begins at or after the old one ended) keeps a probe pinned
    /// to the older snapshot stable — it sees the old lifetime only.
    #[test]
    fn pinned_probe_is_stable_across_causal_slot_reuse() {
        let mut tl = Timeline::new(2);
        tl.activate(0, SysTime(5));
        let mut cost = crate::ProbeCost::default();
        // A reader pins system time 6 while the slot is still live.
        assert_eq!(tl.visible_at(SysTime(6), &mut cost), vec![0]);
        // Writer invalidates at 8 and recycles the slot at 9.
        tl.invalidate(0, SysTime(8));
        tl.activate(0, SysTime(9));
        // The pinned probe still answers from the *old* lifetime; the new
        // one is invisible before 9 and visible from 9 on.
        assert_eq!(tl.visible_at(SysTime(6), &mut cost), vec![0]);
        assert!(tl.visible_at(SysTime(8), &mut cost).is_empty());
        assert_eq!(tl.visible_at(SysTime(9), &mut cost), vec![0]);
    }

    /// The satellite regression, negative half: non-causal reuse would let
    /// a pinned reader surface the recycled slot's new lifetime, so the
    /// debug assertion must reject it outright.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "non-causal slot reuse")]
    fn non_causal_slot_reuse_is_rejected() {
        let mut tl = Timeline::new(2);
        tl.activate(0, SysTime(5));
        tl.invalidate(0, SysTime(8));
        // Re-activation *before* the last invalidation: a probe at 7 would
        // now see the new lifetime under the old snapshot.
        tl.activate(0, SysTime(6));
    }

    #[test]
    fn out_of_order_bulk_load_stays_correct() {
        // Manual system times arriving out of order (System D bulk load):
        // the log drops its monotone fast path but must stay exact.
        let versions = vec![
            (0, sysp(40, 50)),
            (1, sysp(10, 20)),
            (2, SysPeriod::since(SysTime(30))),
            (3, sysp(15, 45)),
        ];
        let probes: Vec<u64> = (0..60).collect();
        for every in [1, 3, 100] {
            check_against_oracle(&versions, every, &probes);
        }
        let mut tl = Timeline::new(3);
        for &(slot, sys) in &versions {
            tl.activate(slot, sys.start);
            if !sys.is_current() {
                tl.invalidate(slot, sys.end);
            }
        }
        assert!(!tl.monotone);
    }

    #[test]
    fn probe_cost_is_bounded_by_checkpoint_interval() {
        // Monotone history: a probe replays at most `every` events past its
        // checkpoint, no matter how long history grows.
        let every = 16;
        let mut tl = Timeline::new(every);
        for i in 0..10_000u64 {
            tl.activate(i, SysTime(i + 1));
            tl.invalidate(i, SysTime(i + 2));
        }
        let mut cost = crate::ProbeCost::default();
        let visible = tl.visible_at(SysTime(5_000), &mut cost);
        assert_eq!(visible.len(), 1);
        // Replay slice plus restored checkpoint members: far below the
        // 20_000-event log.
        assert!(
            cost.node_visits <= (2 * every + 4) as u64,
            "visits {} should be bounded by the checkpoint interval",
            cost.node_visits
        );
    }

    #[test]
    fn nonmonotone_history_probe_skips_segments() {
        // The close-time indexing pattern of the history partitions: each
        // closed version appends (activate start, invalidate end), and the
        // activation time lags the running close time, so the log is never
        // monotone — yet an early probe must not walk the whole log.
        let every = 16;
        let mut tl = Timeline::new(every);
        for i in 0..10_000u64 {
            tl.activate(i, SysTime(i + 1));
            tl.invalidate(i, SysTime(i + 3));
        }
        assert!(!tl.monotone);
        let mut cost = crate::ProbeCost::default();
        let visible = tl.visible_at(SysTime(100), &mut cost);
        assert_eq!(visible.len(), 2);
        // Checkpoint restore plus a handful of replayed segments plus one
        // bounds check per skipped segment — far below the 20 000 events.
        let segments = (tl.event_count() / every) as u64;
        assert!(
            cost.node_visits <= segments + (4 * every) as u64,
            "visits {} should skip inapplicable segments",
            cost.node_visits
        );
    }

    #[test]
    fn range_candidates_cover_every_overlapping_version() {
        let versions = vec![
            (0, sysp(1, 4)),
            (1, sysp(3, 8)),
            (2, sysp(6, 6)),
            (3, SysPeriod::since(SysTime(7))),
            (4, sysp(9, 12)),
        ];
        let mut tl = Timeline::new(2);
        for &(slot, sys) in &versions {
            tl.activate(slot, sys.start);
            if !sys.is_current() {
                tl.invalidate(slot, sys.end);
            }
        }
        let range = sysp(4, 9);
        let mut cost = crate::ProbeCost::default();
        let got = tl.visible_during(&range, &mut cost);
        for (slot, sys) in &versions {
            if sys.overlaps(&range) && !sys.is_empty() {
                assert!(got.contains(slot), "slot {slot} must be a candidate");
            }
        }
        // Not part of the contract, but pin the expected exact set here:
        // slot 0 ended before the range, slot 4 starts at its end.
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn estimates_bound_results() {
        let mut tl = Timeline::new(8);
        for i in 0..200u64 {
            tl.activate(i, SysTime(i + 1));
            if i % 3 != 0 {
                tl.invalidate(i, SysTime(i + 10));
            }
        }
        for p in [0u64, 5, 100, 150, 300] {
            let mut cost = crate::ProbeCost::default();
            let got = tl.visible_at(SysTime(p), &mut cost);
            assert!(tl.estimate_at(SysTime(p)) >= got.len());
        }
        let range = sysp(50, 120);
        let mut cost = crate::ProbeCost::default();
        let got = tl.visible_during(&range, &mut cost);
        assert!(tl.estimate_during(&range) >= got.len());
    }

    #[test]
    fn memory_and_counts_grow_with_history() {
        let mut tl = Timeline::new(4);
        assert_eq!(tl.event_count(), 0);
        assert_eq!(tl.checkpoint_count(), 0);
        for i in 0..20u64 {
            tl.activate(i, SysTime(i));
        }
        assert_eq!(tl.event_count(), 20);
        assert_eq!(tl.checkpoint_count(), 5);
        assert!(tl.memory_bytes() > 0);
    }
}
