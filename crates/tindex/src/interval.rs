//! The interval index: application-time stabbing over sorted endpoint
//! lists.
//!
//! Application periods, unlike system periods, are freely updatable and
//! carry no append-order structure, so the Timeline's event-log trick does
//! not apply. Instead the classic endpoint-list scheme is used: every
//! `(period, slot)` entry is kept in two orders — by period start and by
//! period end. A timeslice probe at date `d` needs entries with
//! `start <= d` *and* `d` before the period's end; each sorted list gives
//! one of the two conditions as a binary-searched prefix/suffix, and the
//! probe scans whichever side is smaller, filtering by the full
//! containment test. Overlap probes work the same way on the
//! `starts-before-range-end` / `ends-after-range-start` pair.
//!
//! Appends are cheap (push to both lists); probes treat the unsorted tail
//! beyond the last [`IntervalIndex::prepare`] call linearly, so
//! correctness never depends on re-sorting — only probe cost does.

use bitempo_core::{AppDate, AppPeriod};

/// One indexed entry: an application period and its partition-local slot.
type Entry = (AppPeriod, u64);

/// The application-time stabbing index. See the module docs.
#[derive(Debug, Default, Clone)]
pub struct IntervalIndex {
    /// Entries; `[..sorted_len]` sorted by period start.
    by_lo: Vec<Entry>,
    /// The same entries; `[..sorted_len]` sorted by period end.
    by_hi: Vec<Entry>,
    /// Length of the sorted prefix in both lists.
    sorted_len: usize,
}

impl IntervalIndex {
    /// Creates an empty index.
    pub fn new() -> IntervalIndex {
        IntervalIndex::default()
    }

    /// Appends an entry. O(1); the entry lands in the unsorted tail until
    /// the next [`IntervalIndex::prepare`].
    pub fn insert(&mut self, slot: u64, app: AppPeriod) {
        self.by_lo.push((app, slot));
        self.by_hi.push((app, slot));
    }

    /// Sorts both endpoint lists. Engines call this at quiescent points
    /// (index build, checkpoint); probes between calls scan the tail
    /// linearly.
    pub fn prepare(&mut self) {
        self.by_lo.sort_unstable_by_key(|e| (e.0.start, e.1));
        self.by_hi.sort_unstable_by_key(|e| (e.0.end, e.1));
        self.sorted_len = self.by_lo.len();
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.by_lo.len()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.by_lo.is_empty()
    }

    /// Approximate resident bytes of both endpoint lists.
    pub fn memory_bytes(&self) -> u64 {
        ((self.by_lo.len() + self.by_hi.len()) * std::mem::size_of::<Entry>()) as u64
    }

    /// Slots whose period contains `d`, sorted ascending.
    pub fn stab(&self, d: AppDate, cost: &mut crate::ProbeCost) -> Vec<u64> {
        self.probe(
            |p| p.contains_point(d),
            // Entries whose period starts after `d` cannot contain it.
            |list| list.partition_point(|e| e.0.start <= d),
            // Entries whose period ends at or before `d` cannot contain it
            // (half-open: the end itself is excluded).
            |list| list.partition_point(|e| e.0.end <= d),
            cost,
        )
    }

    /// Slots whose period overlaps `range`, sorted ascending.
    pub fn overlapping(&self, range: &AppPeriod, cost: &mut crate::ProbeCost) -> Vec<u64> {
        self.probe(
            |p| p.overlaps(range),
            |list| list.partition_point(|e| e.0.start < range.end),
            |list| list.partition_point(|e| e.0.end <= range.start),
            cost,
        )
    }

    /// Upper bound on [`IntervalIndex::stab`] output size.
    pub fn estimate_stab(&self, d: AppDate) -> usize {
        let s = self.sorted_len;
        let lo = self.by_lo[..s].partition_point(|e| e.0.start <= d);
        let hi = s - self.by_hi[..s].partition_point(|e| e.0.end <= d);
        lo.min(hi) + (self.by_lo.len() - s)
    }

    /// Upper bound on [`IntervalIndex::overlapping`] output size.
    pub fn estimate_overlapping(&self, range: &AppPeriod) -> usize {
        let s = self.sorted_len;
        let lo = self.by_lo[..s].partition_point(|e| e.0.start < range.end);
        let hi = s - self.by_hi[..s].partition_point(|e| e.0.end <= range.start);
        lo.min(hi) + (self.by_lo.len() - s)
    }

    /// Shared probe skeleton: pick the cheaper endpoint-list side for the
    /// sorted prefix, filter candidates by the authoritative `matches`
    /// test, then walk the unsorted tail.
    fn probe(
        &self,
        matches: impl Fn(&AppPeriod) -> bool,
        lo_prefix: impl Fn(&[Entry]) -> usize,
        hi_prefix: impl Fn(&[Entry]) -> usize,
        cost: &mut crate::ProbeCost,
    ) -> Vec<u64> {
        let s = self.sorted_len;
        let sorted_lo = &self.by_lo[..s];
        let sorted_hi = &self.by_hi[..s];
        let p = lo_prefix(sorted_lo);
        let q = hi_prefix(sorted_hi);
        let candidates: &[Entry] = if p <= s - q {
            &sorted_lo[..p]
        } else {
            &sorted_hi[q..]
        };
        let mut out = Vec::new();
        for (period, slot) in candidates {
            cost.node_visits += 1;
            if matches(period) {
                out.push(*slot);
            }
        }
        for (period, slot) in &self.by_lo[s..] {
            cost.node_visits += 1;
            if matches(period) {
                out.push(*slot);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitempo_core::Period;

    fn p(a: i64, b: i64) -> AppPeriod {
        Period::new(AppDate(a), AppDate(b))
    }

    fn sample() -> Vec<(u64, AppPeriod)> {
        vec![
            (0, p(0, 10)),
            (1, p(5, 15)),
            (2, p(10, 20)),
            (3, AppPeriod::ALL),
            (4, p(12, 13)),
            (5, AppPeriod::since(AppDate(18))),
        ]
    }

    fn build(entries: &[(u64, AppPeriod)], prepared: bool) -> IntervalIndex {
        let mut ix = IntervalIndex::new();
        for &(slot, period) in entries {
            ix.insert(slot, period);
        }
        if prepared {
            ix.prepare();
        }
        ix
    }

    #[test]
    fn stab_matches_oracle_prepared_and_not() {
        let entries = sample();
        for prepared in [false, true] {
            let ix = build(&entries, prepared);
            for d in -2..25i64 {
                let mut cost = crate::ProbeCost::default();
                let got = ix.stab(AppDate(d), &mut cost);
                let mut want: Vec<u64> = entries
                    .iter()
                    .filter(|(_, per)| per.contains_point(AppDate(d)))
                    .map(|&(slot, _)| slot)
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "stab({d}), prepared={prepared}");
            }
        }
    }

    #[test]
    fn overlap_matches_oracle() {
        let entries = sample();
        let ix = build(&entries, true);
        for (a, b) in [(0, 5), (9, 11), (13, 18), (20, 30), (7, 7)] {
            let range = p(a, b);
            let mut cost = crate::ProbeCost::default();
            let got = ix.overlapping(&range, &mut cost);
            let mut want: Vec<u64> = entries
                .iter()
                .filter(|(_, per)| per.overlaps(&range))
                .map(|&(slot, _)| slot)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "overlap([{a}, {b}))");
        }
    }

    #[test]
    fn half_open_boundary_is_exact() {
        let ix = build(&[(0, p(5, 10))], true);
        let mut cost = crate::ProbeCost::default();
        assert!(ix.stab(AppDate(4), &mut cost).is_empty());
        assert_eq!(ix.stab(AppDate(5), &mut cost), vec![0]);
        assert_eq!(ix.stab(AppDate(9), &mut cost), vec![0]);
        assert!(
            ix.stab(AppDate(10), &mut cost).is_empty(),
            "the end of a half-open period is excluded"
        );
    }

    #[test]
    fn probe_scans_cheaper_endpoint_side() {
        // 100 periods all starting at 0, ending staggered: a stab late in
        // time should scan the short ends-after suffix, not the full
        // starts-before prefix.
        let entries: Vec<(u64, AppPeriod)> = (0..100).map(|i| (i, p(0, 1 + i as i64))).collect();
        let ix = build(&entries, true);
        let mut cost = crate::ProbeCost::default();
        let got = ix.stab(AppDate(95), &mut cost);
        assert_eq!(got.len(), 5);
        assert!(
            cost.node_visits <= 10,
            "visits {} should track the small side",
            cost.node_visits
        );
    }

    #[test]
    fn estimates_bound_results() {
        let entries = sample();
        let ix = build(&entries, true);
        for d in [0i64, 7, 12, 19, 40] {
            let mut cost = crate::ProbeCost::default();
            assert!(ix.estimate_stab(AppDate(d)) >= ix.stab(AppDate(d), &mut cost).len());
        }
        let r = p(8, 14);
        let mut cost = crate::ProbeCost::default();
        assert!(ix.estimate_overlapping(&r) >= ix.overlapping(&r, &mut cost).len());
        assert!(ix.memory_bytes() > 0);
        assert_eq!(ix.len(), entries.len());
        assert!(!ix.is_empty());
    }
}
