//! # bitempo-tindex
//!
//! The temporal index the 2014 systems did not have.
//!
//! The paper's central architectural observation is that every benchmarked
//! system stores versions in *statically partitioned regular tables* and
//! leans on conventional B-Tree/GiST indexes, so system-time travel
//! degrades linearly with history size (Figs 3, 9, 10). This crate supplies
//! the missing structure, in two halves over the common period model of
//! `bitempo-core`:
//!
//! * [`Timeline`] — a system-time visibility index: an append-only log of
//!   *activation* / *invalidation* events with periodic **checkpoint
//!   version-sets**, so "which slots are visible at system version S" is
//!   answered from the nearest checkpoint plus a bounded event replay
//!   instead of a scan over the full history.
//! * [`IntervalIndex`] — an application-time stabbing structure over sorted
//!   endpoint lists, answering timeslice (`AS OF` a date) and overlap
//!   (`BETWEEN` two dates) probes without touching every stored period.
//!
//! [`TemporalIndex`] bundles both over one storage partition. Probes return
//! **candidate supersets**: every slot whose version can match the temporal
//! constraint is returned, possibly with false positives (degenerate
//! `[s, s)` periods, reused slots). Callers re-check the authoritative
//! period on each candidate, which keeps the index sound by construction —
//! the engines' scan postconditions never depend on index precision.
//!
//! Everything here is deterministic: probes visit entries in slot/time
//! order and results are returned sorted by slot, so indexed scans produce
//! rows in exactly the order a sequential scan of the same slots would.

pub mod interval;
pub mod timeline;

pub use interval::IntervalIndex;
pub use timeline::{Event, EventKind, Timeline};

use bitempo_core::{AppDate, AppPeriod, SysPeriod, SysTime};

/// Work counters accumulated by index probes, reported through
/// `ScanMetrics` so benchmark rows distinguish "index probed" from "index
/// helped".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeCost {
    /// Internal entries examined: replayed timeline events, restored
    /// checkpoint members, and endpoint-list entries scanned.
    pub node_visits: u64,
}

/// A system-time probe, mirroring the engine's `SysSpec` without depending
/// on the engine crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysProbe {
    /// Slots visible at one system version (`AS OF SYSTEM TIME`).
    At(SysTime),
    /// Slots whose system period overlaps a range.
    During(SysPeriod),
    /// Slots never invalidated (the implicit current snapshot).
    CurrentOnly,
}

/// An application-time probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppProbe {
    /// Slots whose application period contains a date.
    At(AppDate),
    /// Slots whose application period overlaps a range.
    During(AppPeriod),
}

/// Size and maintenance footprint of one [`TemporalIndex`], reported in the
/// `temporal-index` benchmark so probe-time wins are never shown without
/// their memory cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexFootprint {
    /// Resident bytes across the event log, checkpoints and endpoint lists.
    pub bytes: u64,
    /// Timeline events recorded.
    pub events: u64,
    /// Checkpoint version-sets materialized.
    pub checkpoints: u64,
}

impl IndexFootprint {
    /// Component-wise sum, for aggregating per-table footprints.
    #[must_use]
    pub fn merged(self, other: IndexFootprint) -> IndexFootprint {
        IndexFootprint {
            bytes: self.bytes + other.bytes,
            events: self.events + other.events,
            checkpoints: self.checkpoints + other.checkpoints,
        }
    }
}

/// Both temporal dimensions indexed over one storage partition.
///
/// Slots are partition-local row identifiers (the same `u64`s the engines'
/// `OrderedIndex`/`GistIndex` store). Maintenance mirrors the version
/// lifecycle: [`TemporalIndex::insert`] when a version is stored,
/// [`TemporalIndex::close`] when its system period is terminated in place,
/// and [`TemporalIndex::prepare`] at quiescent points (tuning, checkpoint)
/// to re-sort endpoint lists after out-of-order bulk loads.
#[derive(Debug, Default, Clone)]
pub struct TemporalIndex {
    name: String,
    timeline: Timeline,
    intervals: IntervalIndex,
}

impl TemporalIndex {
    /// Creates an empty index. `checkpoint_every` bounds the event replay
    /// per probe: a checkpoint version-set is cut each time that many
    /// events accumulate.
    pub fn new(name: impl Into<String>, checkpoint_every: usize) -> TemporalIndex {
        TemporalIndex {
            name: name.into(),
            timeline: Timeline::new(checkpoint_every),
            intervals: IntervalIndex::new(),
        }
    }

    /// The index name, as surfaced in access-path displays.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records a stored version: an activation at `sys.start`, an
    /// invalidation at `sys.end` if the period is already closed, and the
    /// application period in the interval index.
    pub fn insert(&mut self, slot: u64, app: AppPeriod, sys: SysPeriod) {
        self.timeline.activate(slot, sys.start);
        if !sys.is_current() {
            self.timeline.invalidate(slot, sys.end);
        }
        self.intervals.insert(slot, app);
    }

    /// Records the in-place termination of `slot`'s system period.
    pub fn close(&mut self, slot: u64, at: SysTime) {
        self.timeline.invalidate(slot, at);
    }

    /// Re-sorts the endpoint lists after out-of-order maintenance (bulk
    /// loads with manual system time). Engines call this from quiescent
    /// points; probes stay correct without it, only slower.
    pub fn prepare(&mut self) {
        self.intervals.prepare();
    }

    /// Number of timeline events recorded.
    pub fn event_count(&self) -> usize {
        self.timeline.event_count()
    }

    /// Resident size and maintenance counters.
    pub fn footprint(&self) -> IndexFootprint {
        IndexFootprint {
            bytes: self.timeline.memory_bytes() + self.intervals.memory_bytes(),
            events: self.timeline.event_count() as u64,
            checkpoints: self.timeline.checkpoint_count() as u64,
        }
    }

    /// Estimated fraction of the partition's `total` slots a probe would
    /// return — the planner compares this against B-Tree selectivity before
    /// committing to the probe. Conservative (an upper bound); with both
    /// dimensions constrained the tighter of the two bounds applies.
    pub fn estimate_fraction(
        &self,
        sys: Option<&SysProbe>,
        app: Option<&AppProbe>,
        total: usize,
    ) -> f64 {
        if total == 0 {
            return 0.0;
        }
        let sys_bound = match sys {
            Some(SysProbe::At(at)) => self.timeline.estimate_at(*at),
            Some(SysProbe::During(r)) => self.timeline.estimate_during(r),
            Some(SysProbe::CurrentOnly) => self.timeline.estimate_at(SysTime::MAX),
            None => total,
        };
        let app_bound = match app {
            Some(AppProbe::At(d)) => self.intervals.estimate_stab(*d),
            Some(AppProbe::During(r)) => self.intervals.estimate_overlapping(r),
            None => total,
        };
        (sys_bound.min(app_bound) as f64 / total as f64).clamp(0.0, 1.0)
    }

    /// Estimated number of candidate slots a probe would return — the
    /// row-denominated companion to [`TemporalIndex::estimate_fraction`]
    /// that cost models and feedback stores consume directly.
    pub fn estimate_candidates(
        &self,
        sys: Option<&SysProbe>,
        app: Option<&AppProbe>,
        total: usize,
    ) -> usize {
        (self.estimate_fraction(sys, app, total) * total as f64).ceil() as usize
    }

    /// Candidate slots for the given probes, sorted ascending. Returns
    /// `None` when neither dimension is constrained (the index cannot
    /// help). With both dimensions constrained the candidate sets are
    /// intersected.
    pub fn candidates(
        &self,
        sys: Option<&SysProbe>,
        app: Option<&AppProbe>,
        cost: &mut ProbeCost,
    ) -> Option<Vec<u64>> {
        let by_sys = sys.map(|s| match s {
            SysProbe::At(at) => self.timeline.visible_at(*at, cost),
            SysProbe::During(r) => self.timeline.visible_during(r, cost),
            SysProbe::CurrentOnly => self.timeline.visible_at(SysTime::MAX, cost),
        });
        let by_app = app.map(|a| match a {
            AppProbe::At(d) => self.intervals.stab(*d, cost),
            AppProbe::During(r) => self.intervals.overlapping(r, cost),
        });
        match (by_sys, by_app) {
            (Some(s), Some(a)) => Some(intersect_sorted(&s, &a)),
            (Some(s), None) => Some(s),
            (None, Some(a)) => Some(a),
            (None, None) => None,
        }
    }
}

/// Intersection of two ascending slot lists.
fn intersect_sorted(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while let (Some(&x), Some(&y)) = (a.get(i), b.get(j)) {
        match x.cmp(&y) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(x);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitempo_core::Period;

    fn sysp(a: u64, b: u64) -> SysPeriod {
        Period::new(SysTime(a), SysTime(b))
    }

    fn appp(a: i64, b: i64) -> AppPeriod {
        Period::new(AppDate(a), AppDate(b))
    }

    #[test]
    fn combined_probe_intersects_dimensions() {
        let mut ix = TemporalIndex::new("t", 4);
        // slot 0: sys [1, ∞), app [0, 10)
        ix.insert(0, appp(0, 10), SysPeriod::since(SysTime(1)));
        // slot 1: sys [1, 5), app [20, 30)
        ix.insert(1, appp(20, 30), sysp(1, 5));
        // slot 2: sys [6, ∞), app [0, 10)
        ix.insert(2, appp(0, 10), SysPeriod::since(SysTime(6)));
        ix.prepare();
        let mut cost = ProbeCost::default();
        let got = ix
            .candidates(
                Some(&SysProbe::At(SysTime(3))),
                Some(&AppProbe::At(AppDate(5))),
                &mut cost,
            )
            .unwrap();
        assert_eq!(got, vec![0]);
        assert!(cost.node_visits > 0);
        // Unconstrained: the index declines.
        assert!(ix.candidates(None, None, &mut cost).is_none());
    }

    #[test]
    fn current_only_probe_returns_open_versions() {
        let mut ix = TemporalIndex::new("t", 4);
        ix.insert(0, AppPeriod::ALL, SysPeriod::since(SysTime(1)));
        ix.insert(1, AppPeriod::ALL, sysp(1, 3));
        ix.insert(2, AppPeriod::ALL, SysPeriod::since(SysTime(2)));
        ix.close(2, SysTime(9));
        let mut cost = ProbeCost::default();
        let got = ix
            .candidates(Some(&SysProbe::CurrentOnly), None, &mut cost)
            .unwrap();
        assert_eq!(got, vec![0]);
    }

    #[test]
    fn footprint_tracks_structure_sizes() {
        let mut ix = TemporalIndex::new("t", 2);
        for slot in 0..10 {
            ix.insert(slot, AppPeriod::ALL, sysp(slot, slot + 1));
        }
        let fp = ix.footprint();
        assert_eq!(fp.events, 20, "activate + invalidate per version");
        assert!(fp.checkpoints >= 5);
        assert!(fp.bytes > 0);
        let doubled = fp.merged(fp);
        assert_eq!(doubled.events, 40);
    }

    #[test]
    fn estimate_candidates_is_rows_and_consistent_with_fraction() {
        let mut ix = TemporalIndex::new("t", 8);
        for slot in 0..100u64 {
            ix.insert(slot, AppPeriod::ALL, sysp(slot, slot + 1));
        }
        ix.prepare();
        let probe = SysProbe::At(SysTime(10));
        let frac = ix.estimate_fraction(Some(&probe), None, 100);
        let rows = ix.estimate_candidates(Some(&probe), None, 100);
        assert_eq!(rows, (frac * 100.0).ceil() as usize);
        assert!(rows >= 1, "a matching stab estimates at least one row");
        // An empty partition estimates zero rows, never a phantom minimum.
        assert_eq!(ix.estimate_candidates(Some(&probe), None, 0), 0);
    }

    #[test]
    fn estimate_is_an_upper_bound_on_candidates() {
        let mut ix = TemporalIndex::new("t", 8);
        for slot in 0..100u64 {
            ix.insert(slot, AppPeriod::ALL, sysp(slot, slot + 1));
        }
        ix.prepare();
        for probe_at in [0u64, 17, 50, 99, 100] {
            let probe = SysProbe::At(SysTime(probe_at));
            let mut cost = ProbeCost::default();
            let got = ix
                .candidates(Some(&probe), None, &mut cost)
                .unwrap_or_default();
            let est = ix.estimate_fraction(Some(&probe), None, 100);
            assert!(
                est * 100.0 + 1e-9 >= got.len() as f64,
                "estimate {est} must bound {} candidates at t{probe_at}",
                got.len()
            );
        }
    }

    #[test]
    fn intersect_sorted_basics() {
        assert_eq!(intersect_sorted(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<u64>::new());
    }
}
