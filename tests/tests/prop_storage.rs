//! Property-based tests for the storage substrate: the B+Tree against the
//! standard-library ordered map, the R-Tree against a linear scan, and the
//! columnar store against a row-store model.

use bitempo_core::{AppDate, Row, SysTime, Value};
use bitempo_core::{Column, DataType, Schema};
use bitempo_storage::{BPlusTree, ColumnTable, RTree, Rect};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::ops::Bound;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Insert/remove/range behaviour matches a `BTreeMap<key, Vec<val>>`
    /// multimap model.
    #[test]
    fn bplustree_matches_btreemap_model(
        ops in proptest::collection::vec((0i64..40, 0u32..8, prop::bool::ANY), 1..300),
        range in (0i64..40, 0i64..40),
    ) {
        let mut tree: BPlusTree<i64, u32> = BPlusTree::new();
        let mut model: BTreeMap<i64, Vec<u32>> = BTreeMap::new();
        for (key, val, insert) in ops {
            if insert {
                tree.insert(key, val);
                model.entry(key).or_default().push(val);
            } else {
                let removed = tree.remove(&key, &val);
                let model_removed = match model.get_mut(&key) {
                    Some(vals) => match vals.iter().position(|&v| v == val) {
                        Some(i) => {
                            vals.remove(i);
                            if vals.is_empty() {
                                model.remove(&key);
                            }
                            true
                        }
                        None => false,
                    },
                    None => false,
                };
                prop_assert_eq!(removed, model_removed);
            }
        }
        let model_len: usize = model.values().map(Vec::len).sum();
        prop_assert_eq!(tree.len(), model_len);
        // Point lookups (sorted; the tree keeps insertion order per key,
        // the model does too, so exact order must match).
        for key in 0..40 {
            prop_assert_eq!(
                tree.get(&key),
                model.get(&key).cloned().unwrap_or_default()
            );
        }
        // Range scan.
        let (lo, hi) = (range.0.min(range.1), range.0.max(range.1));
        let got: Vec<(i64, u32)> = tree
            .range((Bound::Included(&lo), Bound::Excluded(&hi)))
            .map(|(k, v)| (*k, *v))
            .collect();
        let want: Vec<(i64, u32)> = model
            .range(lo..hi)
            .flat_map(|(k, vs)| vs.iter().map(move |&v| (*k, v)))
            .collect();
        prop_assert_eq!(got, want);
    }

    /// R-Tree intersection queries agree with a brute-force scan.
    #[test]
    fn rtree_matches_linear_scan(
        rects in proptest::collection::vec((0i64..200, 0i64..40, 0i64..200, 0i64..40), 1..150),
        query in (0i64..200, 0i64..80, 0i64..200, 0i64..80),
    ) {
        let mut tree = RTree::new();
        let mut stored = Vec::new();
        for (i, (x, w, y, h)) in rects.iter().enumerate() {
            let r = Rect::new(*x, x + w, *y, y + h);
            tree.insert(r, i as u32);
            stored.push(r);
        }
        let q = Rect::new(query.0, query.0 + query.1, query.2, query.2 + query.3);
        let mut got = tree.search(&q);
        got.sort_unstable();
        let mut want: Vec<u32> = stored
            .iter()
            .enumerate()
            .filter(|(_, r)| r.intersects(&q))
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// The columnar store returns exactly the rows appended, before and
    /// after any number of merges, with stable row ids.
    #[test]
    fn column_table_round_trips_rows(
        rows in proptest::collection::vec(
            (any::<i64>(), "[a-z]{0,6}", any::<bool>(), -50_000i64..50_000, 0u64..1000),
            1..120,
        ),
        merge_points in proptest::collection::vec(0usize..120, 0..4),
    ) {
        let schema = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Str),
            Column::new("c", DataType::Date),
            Column::new("d", DataType::SysTime),
        ]);
        let mut table = ColumnTable::new(schema);
        let mut model: Vec<Row> = Vec::new();
        for (i, (a, b, b_null, c, d)) in rows.iter().enumerate() {
            let row = Row::new(vec![
                Value::Int(*a),
                if *b_null { Value::Null } else { Value::str(b.clone()) },
                Value::Date(AppDate(*c)),
                Value::SysTime(SysTime(*d)),
            ]);
            let id = table.append_row(&row).unwrap();
            prop_assert_eq!(id, i);
            model.push(row);
            if merge_points.contains(&i) {
                table.merge();
            }
        }
        table.merge();
        prop_assert_eq!(table.len(), model.len());
        for (i, want) in model.iter().enumerate() {
            prop_assert_eq!(&table.get_row(i), want, "row {}", i);
        }
    }
}
