//! Deterministic plan-shape assertions for the paper's architectural
//! findings — the claims that do not need wall-clock timing (those live in
//! the experiments harness; these run in CI).

use bitempo_core::SysTime;
use bitempo_dbgen::ScaleConfig;
use bitempo_engine::api::{AccessPath, AppSpec, SysSpec, TuningConfig};
use bitempo_engine::{build_engine, BitemporalEngine, SystemKind};
use bitempo_histgen::{loader, HistoryConfig};
use bitempo_workloads::QueryParams;

fn build(kind: SystemKind) -> (Box<dyn BitemporalEngine>, QueryParams) {
    let data = bitempo_dbgen::generate(&ScaleConfig::with_h(0.002));
    let history = bitempo_histgen::generate_history(&data, &HistoryConfig::with_m(0.001));
    let mut engine = build_engine(kind);
    let ids = loader::load_initial(engine.as_mut(), &data).unwrap();
    loader::replay(engine.as_mut(), &ids, &history.archive, 1).unwrap();
    engine.checkpoint();
    let params = QueryParams::derive(engine.as_ref()).unwrap();
    (engine, params)
}

fn is_seq(path: &AccessPath) -> bool {
    matches!(path, AccessPath::FullScan { .. })
}

/// Fig 6 / §5.3.5: implicit current touches one partition; explicit
/// `AS OF now` touches current *and* history on the partitioned systems.
#[test]
fn explicit_as_of_now_visits_history_partition() {
    for kind in [SystemKind::A, SystemKind::B, SystemKind::C] {
        let (engine, _) = build(kind);
        let orders = engine.resolve("orders").unwrap();
        let implicit = engine
            .scan(orders, &SysSpec::Current, &AppSpec::All, &[])
            .unwrap();
        let explicit = engine
            .scan(orders, &SysSpec::AsOf(engine.now()), &AppSpec::All, &[])
            .unwrap();
        assert!(
            explicit.partition_paths.len() > implicit.partition_paths.len(),
            "{kind}: explicit must visit more partitions \
             ({:?} vs {:?})",
            explicit.partition_paths,
            implicit.partition_paths
        );
    }
}

/// Fig 8 / §5.5.1: on System A, a key lookup at current system time hits
/// the system PK index; at past system time the *history* partition falls
/// back to a sequential scan — until the Key+Time tuning adds its index.
#[test]
fn key_lookup_plans_follow_the_paper() {
    let (mut engine, p) = build(SystemKind::A);
    let customer = engine.resolve("customer").unwrap();

    let current = engine
        .lookup_key(customer, &p.hot_customer, &SysSpec::Current, &AppSpec::All)
        .unwrap();
    assert_eq!(current.partition_paths.len(), 1);
    assert!(matches!(
        current.partition_paths[0],
        AccessPath::KeyLookup(_)
    ));

    let past = engine
        .lookup_key(
            customer,
            &p.hot_customer,
            &SysSpec::AsOf(p.sys_initial),
            &AppSpec::All,
        )
        .unwrap();
    assert_eq!(past.partition_paths.len(), 2, "current + history");
    assert!(matches!(past.partition_paths[0], AccessPath::KeyLookup(_)));
    assert!(
        is_seq(&past.partition_paths[1]),
        "history side scans without tuning: {:?}",
        past.partition_paths
    );

    engine.apply_tuning(&TuningConfig::key_time()).unwrap();
    let tuned = engine
        .lookup_key(
            customer,
            &p.hot_customer,
            &SysSpec::AsOf(p.sys_initial),
            &AppSpec::All,
        )
        .unwrap();
    assert!(
        tuned
            .partition_paths
            .iter()
            .all(|path| matches!(path, AccessPath::KeyLookup(_))),
        "Key+Time serves both partitions: {:?}",
        tuned.partition_paths
    );
}

/// §2.6 / Fig 3: System C accepts tuning but every access stays a scan.
#[test]
fn system_c_never_uses_indexes() {
    let (mut engine, p) = build(SystemKind::C);
    engine.apply_tuning(&TuningConfig::key_time()).unwrap();
    let customer = engine.resolve("customer").unwrap();
    for sys in [SysSpec::Current, SysSpec::AsOf(p.sys_initial), SysSpec::All] {
        let out = engine
            .lookup_key(customer, &p.hot_customer, &sys, &AppSpec::All)
            .unwrap();
        assert!(
            out.partition_paths.iter().all(is_seq),
            "C must scan under {sys:?}: {:?}",
            out.partition_paths
        );
    }
}

/// §5.5.1: System B uses the PK index for current-key lookups — but must
/// *still* reconstruct the vertically partitioned current table, so the
/// reported plan shows the index while the cost does not drop to A's level
/// (the cost side is asserted by the fig8/fig12 experiments).
#[test]
fn system_b_key_lookup_uses_index_over_reconstruction() {
    let (engine, p) = build(SystemKind::B);
    let customer = engine.resolve("customer").unwrap();
    let out = engine
        .lookup_key(customer, &p.hot_customer, &SysSpec::Current, &AppSpec::All)
        .unwrap();
    assert!(matches!(out.partition_paths[0], AccessPath::KeyLookup(_)));
}

/// §5.3.3 / Fig 4: the time index turns a selective system-time probe on
/// the history partition into an index scan.
#[test]
fn time_index_serves_selective_history_probes() {
    let (mut engine, _) = build(SystemKind::A);
    let orders = engine.resolve("orders").unwrap();
    let probe = SysSpec::AsOf(SysTime(2));
    let before = engine.scan(orders, &probe, &AppSpec::All, &[]).unwrap();
    assert!(before.partition_paths.iter().all(is_seq));
    engine.apply_tuning(&TuningConfig::time()).unwrap();
    let after = engine.scan(orders, &probe, &AppSpec::All, &[]).unwrap();
    assert!(
        after
            .partition_paths
            .iter()
            .any(|path| matches!(path, AccessPath::IndexScan(_))),
        "history sys_start index must engage: {:?}",
        after.partition_paths
    );
    // Same answer either way.
    let mut a = before.rows.clone();
    let mut b = after.rows.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

/// §5.3.2: a *non-selective* probe ignores the index (plans flip back to
/// scans — "they only work on very selective workloads").
#[test]
fn non_selective_probes_fall_back_to_scans() {
    let (mut engine, p) = build(SystemKind::A);
    engine.apply_tuning(&TuningConfig::time()).unwrap();
    let orders = engine.resolve("orders").unwrap();
    // AS OF a recent time: nearly every history row has sys_start below it.
    let out = engine
        .scan(orders, &SysSpec::AsOf(p.sys_now), &AppSpec::All, &[])
        .unwrap();
    assert!(
        out.partition_paths.iter().all(is_seq),
        "non-selective probe must scan: {:?}",
        out.partition_paths
    );
}

/// §2.5 / Fig 3: System D's GiST engages on temporal windows when tuned.
#[test]
fn system_d_gist_engages_when_tuned() {
    let (mut engine, p) = build(SystemKind::D);
    engine
        .apply_tuning(&TuningConfig {
            gist: true,
            ..Default::default()
        })
        .unwrap();
    let orders = engine.resolve("orders").unwrap();
    let out = engine
        .scan(orders, &SysSpec::Current, &AppSpec::AsOf(p.app_mid), &[])
        .unwrap();
    assert!(
        matches!(out.partition_paths[0], AccessPath::GistScan(_)),
        "{:?}",
        out.partition_paths
    );
}

/// §5.8: System D's bulk load produces strictly fewer commits than replay
/// (timestamps pre-stamped, no transaction-by-transaction execution).
#[test]
fn bulk_load_skips_transactional_replay() {
    let data = bitempo_dbgen::generate(&ScaleConfig::with_h(0.001));
    let history = bitempo_histgen::generate_history(&data, &HistoryConfig::with_m(0.0005));
    let mut replayed = build_engine(SystemKind::D);
    let ids = loader::load_initial(replayed.as_mut(), &data).unwrap();
    let report = loader::replay(replayed.as_mut(), &ids, &history.archive, 1).unwrap();
    assert_eq!(report.timings.len(), history.archive.transactions.len());

    let mut bulk = build_engine(SystemKind::D);
    loader::bulk_load(bulk.as_mut(), &history.db).unwrap();
    // Same final clock, no per-transaction work.
    assert_eq!(bulk.now(), replayed.now());
}
