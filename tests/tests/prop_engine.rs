//! Property-based differential testing of the engines: random DML programs
//! applied to all four engines must leave them in observably identical
//! states under arbitrary temporal specifications.

use bitempo_core::{
    AppDate, AppPeriod, Column, DataType, Key, Period, Row, Schema, SysTime, TableDef,
    TemporalClass, Value,
};
use bitempo_engine::api::{AppSpec, SysSpec};
use bitempo_engine::{build_engine, BitemporalEngine, SystemKind};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Dml {
    Insert {
        id: i64,
        val: i64,
        app: (i64, i64),
    },
    Update {
        id: i64,
        val: i64,
        portion: Option<(i64, i64)>,
    },
    Delete {
        id: i64,
        portion: Option<(i64, i64)>,
    },
    Overwrite {
        id: i64,
        period: (i64, i64),
    },
    Commit,
}

fn period(p: (i64, i64)) -> AppPeriod {
    let (a, b) = if p.0 <= p.1 { p } else { (p.1, p.0) };
    Period::new(AppDate(a), AppDate(b + 1))
}

fn dml_strategy() -> impl Strategy<Value = Dml> {
    let id = 0i64..6;
    let val = 0i64..100;
    let span = (0i64..50, 0i64..50);
    prop_oneof![
        (id.clone(), val.clone(), span.clone()).prop_map(|(id, val, app)| Dml::Insert {
            id,
            val,
            app
        }),
        (id.clone(), val, proptest::option::of(span.clone()))
            .prop_map(|(id, val, portion)| Dml::Update { id, val, portion }),
        (id.clone(), proptest::option::of(span.clone()))
            .prop_map(|(id, portion)| Dml::Delete { id, portion }),
        (id, span).prop_map(|(id, period)| Dml::Overwrite { id, period }),
        Just(Dml::Commit),
    ]
}

fn table_def() -> TableDef {
    TableDef::new(
        "t",
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("val", DataType::Int),
        ]),
        vec![0],
        TemporalClass::Bitemporal,
        Some("vt"),
    )
    .unwrap()
}

fn apply(engine: &mut dyn BitemporalEngine, table: bitempo_core::TableId, op: &Dml) {
    match op {
        Dml::Insert { id, val, app } => {
            engine
                .insert(
                    table,
                    Row::new(vec![Value::Int(*id), Value::Int(*val)]),
                    Some(period(*app)),
                )
                .unwrap();
        }
        Dml::Update { id, val, portion } => {
            engine
                .update(
                    table,
                    &Key::int(*id),
                    &[(1, Value::Int(*val))],
                    portion.map(period),
                )
                .unwrap();
        }
        Dml::Delete { id, portion } => {
            engine
                .delete(table, &Key::int(*id), portion.map(period))
                .unwrap();
        }
        Dml::Overwrite { id, period: p } => {
            // Overwrite errors when the key has no visible version — the
            // engines must agree on that too, so swallow uniformly.
            let _ = engine.overwrite_app_period(table, &Key::int(*id), period(*p));
        }
        Dml::Commit => {
            engine.commit();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any DML program leaves all four engines observably identical.
    #[test]
    fn engines_agree_on_random_programs(
        program in proptest::collection::vec(dml_strategy(), 1..60),
        probe_sys in 0u64..40,
        probe_app in 0i64..60,
    ) {
        let mut engines: Vec<(SystemKind, Box<dyn BitemporalEngine>, bitempo_core::TableId)> =
            SystemKind::ALL
                .into_iter()
                .map(|kind| {
                    let mut e = build_engine(kind);
                    let t = e.create_table(table_def()).unwrap();
                    (kind, e, t)
                })
                .collect();

        for op in &program {
            for (_, engine, table) in &mut engines {
                apply(engine.as_mut(), *table, op);
            }
        }
        for (_, engine, _) in &mut engines {
            engine.commit();
            engine.checkpoint();
        }

        let specs = [
            (SysSpec::Current, AppSpec::All),
            (SysSpec::All, AppSpec::All),
            (SysSpec::AsOf(SysTime(probe_sys)), AppSpec::All),
            (SysSpec::Current, AppSpec::AsOf(AppDate(probe_app))),
            (SysSpec::AsOf(SysTime(probe_sys)), AppSpec::AsOf(AppDate(probe_app))),
            (
                SysSpec::Range(Period::new(SysTime(probe_sys / 2), SysTime(probe_sys + 1))),
                AppSpec::Range(Period::new(AppDate(probe_app / 2), AppDate(probe_app + 1))),
            ),
        ];
        for (sys, app) in &specs {
            let mut reference: Option<Vec<Row>> = None;
            for (kind, engine, table) in &engines {
                let mut rows = engine.scan(*table, sys, app, &[]).unwrap().rows;
                rows.sort();
                match &reference {
                    None => reference = Some(rows),
                    Some(want) => prop_assert_eq!(
                        &rows, want,
                        "{} diverged under {:?}/{:?}", kind, sys, app
                    ),
                }
            }
        }
    }

    /// Sequenced updates preserve application-time coverage: updating any
    /// portion never creates gaps or overlaps within one key's current
    /// versions.
    #[test]
    fn sequenced_updates_tile_the_app_axis(
        portions in proptest::collection::vec((0i64..50, 0i64..50), 1..12),
    ) {
        let mut engine = build_engine(SystemKind::A);
        let table = engine.create_table(table_def()).unwrap();
        engine
            .insert(
                table,
                Row::new(vec![Value::Int(1), Value::Int(0)]),
                Some(Period::new(AppDate(0), AppDate(100))),
            )
            .unwrap();
        engine.commit();
        for (i, p) in portions.iter().enumerate() {
            engine
                .update(table, &Key::int(1), &[(1, Value::Int(i as i64 + 1))], Some(period(*p)))
                .unwrap();
            engine.commit();
        }
        let rows = engine
            .scan(table, &SysSpec::Current, &AppSpec::All, &[])
            .unwrap()
            .rows;
        let mut periods: Vec<(i64, i64)> = rows
            .iter()
            .map(|r| {
                (
                    r.get(2).as_date().unwrap().0,
                    r.get(3).as_date().unwrap().0,
                )
            })
            .collect();
        periods.sort_unstable();
        prop_assert_eq!(periods.first().map(|p| p.0), Some(0));
        prop_assert_eq!(periods.last().map(|p| p.1), Some(100));
        for w in periods.windows(2) {
            prop_assert_eq!(w[0].1, w[1].0, "gap or overlap: {:?}", periods);
        }
    }
}
