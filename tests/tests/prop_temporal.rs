//! Property-based tests of the temporal algebra and temporal operators.

use bitempo_core::{AppDate, AppPeriod, Period, Row, Value};
use bitempo_engine::sequenced::split_for_portion;
use bitempo_query::expr::col;
use bitempo_query::{temporal_aggregate, temporal_aggregate_naive, temporal_join};
use proptest::prelude::*;

fn p(a: i64, b: i64) -> AppPeriod {
    Period::new(AppDate(a.min(b)), AppDate(a.max(b) + 1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Period algebra: intersection is the overlap witness, difference plus
    /// intersection tile the original period exactly.
    #[test]
    fn period_algebra_laws(a in (0i64..100, 0i64..100), b in (0i64..100, 0i64..100)) {
        let x = p(a.0, a.1);
        let y = p(b.0, b.1);
        // Overlap ⇔ non-empty intersection.
        prop_assert_eq!(x.overlaps(&y), x.intersect(&y).is_some());
        // Intersection is symmetric and contained in both.
        prop_assert_eq!(x.intersect(&y), y.intersect(&x));
        if let Some(ix) = x.intersect(&y) {
            prop_assert!(x.contains_period(&ix));
            prop_assert!(y.contains_period(&ix));
        }
        // difference(x, y) ∪ intersect(x, y) tiles x with no overlap.
        let (left, right) = x.difference(&y);
        let mut pieces: Vec<AppPeriod> = [left, right].into_iter().flatten().collect();
        if let Some(ix) = x.intersect(&y) {
            pieces.push(ix);
        }
        pieces.sort_by_key(|q| q.start);
        let total: i64 = pieces.iter().map(|q| q.end.0 - q.start.0).sum();
        prop_assert_eq!(total, x.end.0 - x.start.0);
        for w in pieces.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
    }

    /// Portion splitting is exactly the difference/intersection tiling.
    #[test]
    fn split_tiles_exactly(v in (0i64..100, 0i64..100), portion in (0i64..100, 0i64..100)) {
        let version = p(v.0, v.1);
        let portion = p(portion.0, portion.1);
        match split_for_portion(version, portion) {
            None => prop_assert!(!version.overlaps(&portion)),
            Some(split) => {
                prop_assert!(version.contains_period(&split.affected));
                prop_assert!(portion.contains_period(&split.affected));
                let mut pieces = split.residues.clone();
                pieces.push(split.affected);
                let total: i64 = pieces.iter().map(|q| q.end.0 - q.start.0).sum();
                prop_assert_eq!(total, version.end.0 - version.start.0);
                for r in &split.residues {
                    prop_assert!(!r.overlaps(&portion));
                }
            }
        }
    }

    /// The event-sweep temporal aggregation agrees with the naive SQL:2011
    /// boundary formulation on arbitrary interval sets (integer values keep
    /// floating point exact).
    #[test]
    fn sweep_equals_naive_aggregation(
        intervals in proptest::collection::vec((0i64..80, 1i64..30, 1i64..50), 0..60),
    ) {
        let rows: Vec<Row> = intervals
            .iter()
            .map(|(s, len, v)| {
                Row::new(vec![
                    Value::Int(*v),
                    Value::Date(AppDate(*s)),
                    Value::Date(AppDate(s + len)),
                ])
            })
            .collect();
        let sweep = temporal_aggregate(&rows, 1, 2, &col(0)).unwrap();
        let naive = temporal_aggregate_naive(&rows, 1, 2, &col(0)).unwrap();
        prop_assert_eq!(sweep, naive);
    }

    /// Temporal aggregation conservation: the time-weighted sum over the
    /// output intervals equals the sum of value × duration over the input.
    #[test]
    fn aggregation_conserves_mass(
        intervals in proptest::collection::vec((0i64..80, 1i64..30, 1i64..50), 1..60),
    ) {
        let rows: Vec<Row> = intervals
            .iter()
            .map(|(s, len, v)| {
                Row::new(vec![
                    Value::Int(*v),
                    Value::Date(AppDate(*s)),
                    Value::Date(AppDate(s + len)),
                ])
            })
            .collect();
        let out = temporal_aggregate(&rows, 1, 2, &col(0)).unwrap();
        let output_mass: f64 = out
            .iter()
            .map(|r| {
                let s = r.get(0).as_date().unwrap().0;
                let e = r.get(1).as_date().unwrap().0;
                r.get(2).as_double().unwrap() * (e - s) as f64
            })
            .sum();
        let input_mass: f64 = intervals
            .iter()
            .map(|(_, len, v)| (*v * *len) as f64)
            .sum();
        prop_assert!((output_mass - input_mass).abs() < 1e-6,
            "mass {} vs {}", output_mass, input_mass);
    }

    /// Temporal join output periods are exactly the pairwise intersections.
    #[test]
    fn temporal_join_is_overlap_semantics(
        left in proptest::collection::vec((0i64..5, 0i64..40, 1i64..20), 0..30),
        right in proptest::collection::vec((0i64..5, 0i64..40, 1i64..20), 0..30),
    ) {
        let mk = |items: &[(i64, i64, i64)]| -> Vec<Row> {
            items
                .iter()
                .map(|(k, s, len)| {
                    Row::new(vec![
                        Value::Int(*k),
                        Value::Date(AppDate(*s)),
                        Value::Date(AppDate(s + len)),
                    ])
                })
                .collect()
        };
        let l = mk(&left);
        let r = mk(&right);
        let joined = temporal_join(&l, &r, &[0], &[0], (1, 2), (1, 2));
        // Brute-force expected count.
        let mut expected = 0usize;
        for (lk, ls, ll) in &left {
            for (rk, rs, rl) in &right {
                if lk == rk && ls < &(rs + rl) && rs < &(ls + ll) {
                    expected += 1;
                }
            }
        }
        prop_assert_eq!(joined.len(), expected);
        for row in &joined {
            // Appended intersection is non-empty and inside both periods.
            let n = row.arity();
            let (is_, ie) = (row.get(n - 2).as_date().unwrap(), row.get(n - 1).as_date().unwrap());
            prop_assert!(is_ < ie);
            let ls = row.get(1).as_date().unwrap();
            let le = row.get(2).as_date().unwrap();
            let rs = row.get(4).as_date().unwrap();
            let re = row.get(5).as_date().unwrap();
            prop_assert!(is_ >= ls.max(rs));
            prop_assert!(ie <= le.min(re));
        }
    }
}
