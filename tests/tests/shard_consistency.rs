//! Cross-shard consistency oracle suite.
//!
//! The claim under test: a hash-sharded cluster executing a transaction
//! history is **byte-identical** to a single engine executing the same
//! history serially — per key, per version stamp, at *every* commit
//! timestamp, for all five temporal query classes (implicit current,
//! system `AS OF`, application `AS OF`, system range, all versions).
//! Commit-at-gts makes that possible: every cluster commit lands on its
//! shards at exactly the oracle timestamp the serial engine would have
//! assigned, so the two histories share one time axis.
//!
//! The crash seeds then check the 2PC recovery matrix at its two
//! interesting edges: a WAL truncated *after* one shard's commit decision
//! (the surviving decision must finish the sibling's undecided prepare)
//! and truncated *at* the prepares on every participant (presumed abort —
//! the transaction vanishes atomically from all shards).

use bitempo_core::{AppDate, AppPeriod, Key, Row, Value};
use bitempo_core::{Period, SysTime, TableId};
use bitempo_engine::api::{AppSpec, BitemporalEngine, SysSpec};
use bitempo_engine::testutil::{bitemp_table, simple_row};
use bitempo_engine::{build_engine, SystemKind};
use bitempo_shard::{partition_checkpoint, recover_cluster, Cluster, ShardInput};
use bitempo_storage::DurabilityMode;
use bitempo_wal::{Checkpoint, SharedBuf, TxnWal};

/// Keys seeded before the scripted history starts.
const SEED_KEYS: i64 = 12;

/// One scripted statement; a transaction is a slice of these.
#[derive(Clone)]
enum St {
    Ins(i64, i64, Option<AppPeriod>),
    Upd(i64, i64, Option<AppPeriod>),
    Del(i64),
}

fn app(start: i64, end: i64) -> AppPeriod {
    Period {
        start: AppDate(start),
        end: AppDate(end),
    }
}

/// The scripted history: a deterministic mix of inserts, whole-period and
/// `FOR PORTION OF` updates, and deletes, with several multi-key
/// transactions that straddle shards at any shard count ≥ 2.
fn script() -> Vec<Vec<St>> {
    vec![
        vec![St::Upd(0, 100, None)],
        vec![St::Ins(50, 1, Some(app(10, 30))), St::Upd(1, 101, None)],
        vec![St::Upd(2, 102, Some(app(5, 15))), St::Upd(3, 103, None)],
        vec![St::Del(4)],
        vec![
            St::Upd(5, 105, None),
            St::Upd(6, 106, None),
            St::Upd(7, 107, Some(app(0, 20))),
        ],
        vec![St::Ins(51, 2, None), St::Ins(52, 3, Some(app(1, 9)))],
        vec![St::Upd(0, 200, Some(app(12, 18))), St::Del(8)],
        vec![St::Upd(9, 109, None), St::Upd(10, 110, None)],
        vec![St::Ins(53, 4, None), St::Upd(50, 5, Some(app(11, 29)))],
        vec![St::Upd(11, 111, None), St::Upd(5, 205, None)],
    ]
}

fn seed_engine(kind: SystemKind) -> (Box<dyn BitemporalEngine>, TableId) {
    let mut engine = build_engine(kind);
    let t = engine.create_table(bitemp_table("acct")).unwrap();
    for k in 0..SEED_KEYS {
        let per = if k % 3 == 0 { Some(app(0, 50)) } else { None };
        engine.insert(t, simple_row(k, k), per).unwrap();
    }
    engine.commit();
    (engine, t)
}

/// Applies one scripted transaction directly to the serial oracle engine.
fn apply_serial(engine: &mut dyn BitemporalEngine, t: TableId, txn: &[St]) {
    for st in txn {
        match st {
            St::Ins(id, v, per) => engine.insert(t, simple_row(*id, *v), *per).unwrap(),
            St::Upd(id, v, per) => {
                engine
                    .update(t, &Key::int(*id), &[(1, Value::Int(*v))], *per)
                    .unwrap();
            }
            St::Del(id) => {
                engine.delete(t, &Key::int(*id), None).unwrap();
            }
        }
    }
    engine.commit();
}

/// Buffers one scripted transaction on a cluster transaction.
fn apply_cluster(cluster: &Cluster, t: TableId, txn: &[St]) -> SysTime {
    let mut ctx = cluster.begin().unwrap();
    for st in txn {
        match st {
            St::Ins(id, v, per) => ctx.insert(t, simple_row(*id, *v), *per).unwrap(),
            St::Upd(id, v, per) => ctx
                .update(t, &Key::int(*id), &[(1, Value::Int(*v))], *per)
                .unwrap(),
            St::Del(id) => ctx.delete(t, &Key::int(*id), None).unwrap(),
        }
    }
    ctx.commit().unwrap()
}

/// Sorted debug lines of one scan — the byte-for-byte comparison unit.
/// The scan schema appends both periods to every row, so two equal line
/// sets agree on values *and* version stamps.
fn scan_lines(
    view: &dyn BitemporalEngine,
    t: TableId,
    sys: &SysSpec,
    app: &AppSpec,
) -> Vec<String> {
    let out = view.scan(t, sys, app, &[]).unwrap();
    let mut lines: Vec<String> = out.rows.iter().map(|r: &Row| format!("{r:?}")).collect();
    lines.sort();
    lines
}

/// Compares the cluster and the serial oracle across the five query
/// classes. The `AS OF`-style classes sweep **every** commit timestamp.
fn assert_equivalent(
    cluster: &Cluster,
    oracle: &dyn BitemporalEngine,
    ct: TableId,
    ot: TableId,
    last_ts: u64,
    label: &str,
) {
    let snap = cluster.snapshot();
    let guards = snap.read().unwrap();
    let view = guards.view();
    let mid = AppDate(14);
    // Classes 1 and 5: implicit current, all versions.
    for (sys, app) in [
        (SysSpec::Current, AppSpec::All),
        (SysSpec::All, AppSpec::All),
    ] {
        assert_eq!(
            scan_lines(&view, ct, &sys, &app),
            scan_lines(oracle, ot, &sys, &app),
            "{label}: {sys:?}/{app:?}"
        );
    }
    // Classes 2–4 at every commit timestamp: system AS OF, application
    // AS OF (on top of a system pin), system range from the base.
    for ts in 1..=last_ts {
        for (sys, app) in [
            (SysSpec::AsOf(SysTime(ts)), AppSpec::All),
            (SysSpec::AsOf(SysTime(ts)), AppSpec::AsOf(mid)),
            (
                SysSpec::Range(Period {
                    start: SysTime(1),
                    end: SysTime(ts + 1),
                }),
                AppSpec::All,
            ),
        ] {
            assert_eq!(
                scan_lines(&view, ct, &sys, &app),
                scan_lines(oracle, ot, &sys, &app),
                "{label} at ts {ts}: {sys:?}/{app:?}"
            );
        }
    }
}

/// Canonical per-shard lines of a full-state checkpoint partition, in the
/// exact format `bitempo_wal::canonical_state` produces for an engine.
fn partitioned_canonical(full: &Checkpoint, shards: usize) -> Vec<Vec<String>> {
    partition_checkpoint(full, shards)
        .iter()
        .map(|part| {
            let mut lines = Vec::new();
            for (def, versions) in &part.tables {
                let mut t: Vec<String> = versions
                    .iter()
                    .map(|v| format!("{}|{v:?}", def.name))
                    .collect();
                t.sort();
                lines.extend(t);
            }
            lines
        })
        .collect()
}

/// Runs the scripted history on a cluster of `shards` shards with Strict
/// WALs; returns the WAL images, the per-shard base checkpoints, and the
/// final commit timestamp (the cluster is verified against `oracle` at
/// every timestamp before close).
fn run_sharded(
    kind: SystemKind,
    shards: usize,
    oracle: &dyn BitemporalEngine,
    ot: TableId,
) -> (Vec<Vec<u8>>, Vec<Vec<u8>>, u64) {
    let (mut seed, st) = seed_engine(kind);
    let base = Checkpoint::capture(seed.as_mut(), &[st], 0).unwrap();
    let bases: Vec<Vec<u8>> = partition_checkpoint(&base, shards)
        .iter()
        .map(|p| p.encode())
        .collect();
    let bufs: Vec<SharedBuf> = (0..shards).map(|_| SharedBuf::new()).collect();
    let wals = bufs
        .iter()
        .map(|b| Some(TxnWal::create(Box::new(b.clone()), DurabilityMode::Strict).unwrap()))
        .collect();
    let cluster = Cluster::from_checkpoint(kind, &base, wals).unwrap();
    let ct = cluster.table_ids()[0];
    let mut last = SysTime(1);
    for txn in &script() {
        last = apply_cluster(&cluster, ct, txn);
    }
    assert_equivalent(
        &cluster,
        oracle,
        ct,
        ot,
        last.0,
        &format!("{kind}/{shards}sh"),
    );
    assert_eq!(cluster.active_pins(), 0, "{kind}/{shards}sh: leaked pins");
    cluster.close().unwrap();
    (bufs.iter().map(|b| b.snapshot()).collect(), bases, last.0)
}

#[test]
fn sharded_execution_is_byte_identical_to_the_serial_oracle() {
    for kind in SystemKind::ALL {
        let (mut oracle, ot) = seed_engine(kind);
        for txn in &script() {
            apply_serial(oracle.as_mut(), ot, txn);
        }
        for shards in [1usize, 2, 4] {
            run_sharded(kind, shards, oracle.as_ref(), ot);
        }
    }
}

/// Truncates `wal` to drop its last `n` records.
fn drop_last(wal: &[u8], n: usize) -> Vec<u8> {
    use bitempo_storage::wal::{scan, BODY_OVERHEAD, FRAME_OVERHEAD, WAL_HEADER_LEN};
    let scan = scan(wal);
    assert!(scan.records.len() >= n, "cannot drop {n} records");
    let keep = scan.records.len() - n;
    let cut = WAL_HEADER_LEN
        + scan.records[..keep]
            .iter()
            .map(|r| FRAME_OVERHEAD + BODY_OVERHEAD + r.payload.len())
            .sum::<usize>();
    wal[..cut].to_vec()
}

#[test]
fn crash_after_decision_converges_to_the_full_serial_state() {
    // The script's final transaction is multi-key (keys 11 and 5), so at
    // 2 shards it either straddles both (2PC, prepare+decision on each)
    // or lands on one (commit record). The seed only applies to the 2PC
    // case; find a shard whose log ends in a decision and cut it.
    for kind in SystemKind::ALL {
        let (mut oracle, ot) = seed_engine(kind);
        for txn in &script() {
            apply_serial(oracle.as_mut(), ot, txn);
        }
        let (wals, bases, _) = run_sharded(kind, 2, oracle.as_ref(), ot);
        let expected =
            partitioned_canonical(&Checkpoint::capture(oracle.as_mut(), &[ot], 0).unwrap(), 2);

        let ends_in_decision = |wal: &[u8]| {
            let scan = bitempo_storage::wal::scan(wal);
            scan.records.last().is_some_and(|r| {
                matches!(
                    bitempo_wal::decode_payload(&r.payload),
                    Ok(bitempo_wal::WalPayload::Decision { commit: true, .. })
                )
            })
        };
        let victim = (0..2).find(|&i| ends_in_decision(&wals[i]));
        let Some(victim) = victim else {
            // Both final-txn keys hashed to one shard at this count; the
            // presumed-abort seed below still covers the 2PC paths.
            continue;
        };
        let inputs: Vec<ShardInput> = (0..2)
            .map(|i| ShardInput {
                wal: if i == victim {
                    drop_last(&wals[i], 1)
                } else {
                    wals[i].clone()
                },
                checkpoints: vec![bases[i].clone()],
            })
            .collect();
        let rec = recover_cluster(kind, &inputs, &Default::default()).unwrap();
        assert!(
            !rec.committed_pending.is_empty(),
            "{kind}: the cut decision must be recovered from the sibling"
        );
        assert!(rec.presumed_aborted.is_empty(), "{kind}");
        for (si, r) in rec.shards.iter().enumerate() {
            assert_eq!(
                bitempo_wal::canonical_state(r.engine.as_ref(), &r.ids).unwrap(),
                expected[si],
                "{kind}: shard {si} must converge to the full serial state"
            );
        }
    }
}

#[test]
fn crash_at_prepare_aborts_the_tail_transaction_on_every_shard() {
    // Cut every shard's log at the last transaction's records (decision
    // AND prepare where present): no decision survives anywhere, so the
    // final transaction is presumed aborted — the recovered cluster must
    // equal a serial oracle that never ran it.
    for kind in SystemKind::ALL {
        let (mut full_oracle, ot) = seed_engine(kind);
        for txn in &script() {
            apply_serial(full_oracle.as_mut(), ot, txn);
        }
        let (wals, bases, last_ts) = run_sharded(kind, 2, full_oracle.as_ref(), ot);

        // The prefix oracle: the same history minus the last transaction.
        let (mut prefix, pt) = seed_engine(kind);
        let all = script();
        for txn in &all[..all.len() - 1] {
            apply_serial(prefix.as_mut(), pt, txn);
        }
        let expected =
            partitioned_canonical(&Checkpoint::capture(prefix.as_mut(), &[pt], 0).unwrap(), 2);

        // Drop every record stamped with the final commit timestamp from
        // each shard: prepare + decision where it ran 2PC, a lone commit
        // record where one shard owned every key, nothing on shards the
        // transaction never touched. Matching on the stamp (not record
        // kind) keeps an *earlier* transaction's trailing decision safe
        // on non-participant shards.
        let gts_of = |payload: &[u8]| match bitempo_wal::decode_payload(payload) {
            Ok(bitempo_wal::WalPayload::Commit { gts, .. }) => gts,
            Ok(bitempo_wal::WalPayload::Prepare { gts, .. }) => Some(gts),
            Ok(bitempo_wal::WalPayload::Decision { gts, .. }) => Some(gts),
            Err(_) => None,
        };
        let last_txn_records = |wal: &[u8]| {
            bitempo_storage::wal::scan(wal)
                .records
                .iter()
                .rev()
                .take_while(|r| gts_of(&r.payload) == Some(last_ts))
                .count()
        };
        let inputs: Vec<ShardInput> = (0..2)
            .map(|i| ShardInput {
                wal: drop_last(&wals[i], last_txn_records(&wals[i])),
                checkpoints: vec![bases[i].clone()],
            })
            .collect();
        let rec = recover_cluster(kind, &inputs, &Default::default()).unwrap();
        assert!(
            rec.committed_pending.is_empty(),
            "{kind}: no decision survived, nothing may commit"
        );
        for (si, r) in rec.shards.iter().enumerate() {
            assert_eq!(
                bitempo_wal::canonical_state(r.engine.as_ref(), &r.ids).unwrap(),
                expected[si],
                "{kind}: shard {si} must equal the serial prefix without the tail txn"
            );
        }
    }
}
