//! End-to-end archive round trip: generate → serialize to disk → reload →
//! replay, and confirm the reloaded archive drives an engine to the same
//! state as the original.

use bitempo_dbgen::ScaleConfig;
use bitempo_engine::api::{AppSpec, SysSpec};
use bitempo_engine::{build_engine, SystemKind};
use bitempo_histgen::{loader, Archive, HistoryConfig};

#[test]
fn archive_file_round_trip_drives_identical_state() {
    let data = bitempo_dbgen::generate(&ScaleConfig::tiny());
    let history = bitempo_histgen::generate_history(&data, &HistoryConfig::tiny());

    let dir = std::env::temp_dir().join("bitempo_it_archive");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("history.biha");
    history.archive.save(&path).unwrap();
    let reloaded = Archive::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(history.archive, reloaded);

    let mut original = build_engine(SystemKind::A);
    let ids1 = loader::load_initial(original.as_mut(), &data).unwrap();
    loader::replay(original.as_mut(), &ids1, &history.archive, 1).unwrap();

    let mut replayed = build_engine(SystemKind::A);
    let ids2 = loader::load_initial(replayed.as_mut(), &data).unwrap();
    loader::replay(replayed.as_mut(), &ids2, &reloaded, 1).unwrap();

    for (&a, &b) in ids1.iter().zip(&ids2) {
        let mut ra = original
            .scan(a, &SysSpec::All, &AppSpec::All, &[])
            .unwrap()
            .rows;
        let mut rb = replayed
            .scan(b, &SysSpec::All, &AppSpec::All, &[])
            .unwrap()
            .rows;
        ra.sort();
        rb.sort();
        assert_eq!(ra, rb);
    }
}

/// Determinism regression: the generator must be a pure function of its
/// seed. Two independent runs over independently regenerated base data must
/// produce byte-for-byte identical archives — the cross-engine equivalence
/// suite, the benchmark's repetitions, and archive round trips all assume
/// this.
#[test]
fn same_seed_produces_identical_archives() {
    let make = || {
        let data = bitempo_dbgen::generate(&ScaleConfig::tiny());
        bitempo_histgen::generate_history(&data, &HistoryConfig::tiny())
    };
    let (a, b) = (make(), make());
    assert_eq!(a.archive, b.archive, "same seed must replay identically");
    assert_eq!(a.archive.transactions.len(), b.archive.transactions.len());

    // A different scenario seed must actually change the stream (guards
    // against the seed being ignored).
    let data = bitempo_dbgen::generate(&ScaleConfig::tiny());
    let mut other_cfg = HistoryConfig::tiny();
    other_cfg.seed ^= 0xDEAD_BEEF;
    let c = bitempo_histgen::generate_history(&data, &other_cfg);
    assert_ne!(a.archive, c.archive, "seed must steer the generator");
}

#[test]
fn archive_size_scales_with_history() {
    let data = bitempo_dbgen::generate(&ScaleConfig::tiny());
    let small = bitempo_histgen::generate_history(&data, &HistoryConfig::with_m(0.0002));
    let large = bitempo_histgen::generate_history(&data, &HistoryConfig::with_m(0.0008));
    let bytes = |a: &Archive| {
        let mut buf = Vec::new();
        a.write_to(&mut buf).unwrap();
        buf.len()
    };
    let (s, l) = (bytes(&small.archive), bytes(&large.archive));
    assert!(l > 2 * s, "archive must grow with m: {s} vs {l}");
}
