//! Temporal consistency invariants (paper §3/§4: "The data set is
//! consistent with the TPC-H data for each time in system time history").

use bitempo_core::{AppPeriod, SysTime, Value};
use bitempo_dbgen::{col, ScaleConfig};
use bitempo_engine::api::{AppSpec, SysSpec};
use bitempo_engine::{build_engine, BitemporalEngine, SystemKind};
use bitempo_histgen::{loader, HistoryConfig};
use std::collections::{HashMap, HashSet};

fn build_engine_a() -> (Box<dyn BitemporalEngine>, SysTime) {
    let data = bitempo_dbgen::generate(&ScaleConfig::with_h(0.002));
    let history = bitempo_histgen::generate_history(&data, &HistoryConfig::with_m(0.001));
    let mut engine = build_engine(SystemKind::A);
    let ids = loader::load_initial(engine.as_mut(), &data).unwrap();
    loader::replay(engine.as_mut(), &ids, &history.archive, 1).unwrap();
    let now = engine.now();
    (engine, now)
}

/// At every sampled system time, every lineitem references an existing
/// order and every order an existing customer — the generator only emits
/// transactions that keep the TPC-H snapshot consistent.
#[test]
fn referential_integrity_at_every_sampled_system_time() {
    let (engine, now) = build_engine_a();
    let orders_id = engine.resolve("orders").unwrap();
    let lineitem_id = engine.resolve("lineitem").unwrap();
    let customer_id = engine.resolve("customer").unwrap();

    let samples: Vec<SysTime> = (0..=10)
        .map(|i| SysTime(1 + (now.0 - 1) * i / 10))
        .collect();
    for t in samples {
        let sys = SysSpec::AsOf(t);
        let orders = engine
            .scan(orders_id, &sys, &AppSpec::All, &[])
            .unwrap()
            .rows;
        let order_keys: HashSet<i64> = orders
            .iter()
            .map(|r| r.get(col::orders::ORDERKEY).as_int().unwrap())
            .collect();
        let customers: HashSet<i64> = engine
            .scan(customer_id, &sys, &AppSpec::All, &[])
            .unwrap()
            .rows
            .iter()
            .map(|r| r.get(col::customer::CUSTKEY).as_int().unwrap())
            .collect();
        for o in &orders {
            let ck = o.get(col::orders::CUSTKEY).as_int().unwrap();
            assert!(customers.contains(&ck), "order without customer at {t}");
        }
        let lineitems = engine
            .scan(lineitem_id, &sys, &AppSpec::All, &[])
            .unwrap()
            .rows;
        for li in &lineitems {
            let ok = li.get(col::lineitem::ORDERKEY).as_int().unwrap();
            assert!(order_keys.contains(&ok), "orphan lineitem at {t}");
        }
        assert!(!orders.is_empty(), "snapshot at {t} must not be empty");
    }
}

/// Per key: system periods of versions sharing an application point never
/// overlap, and the full bitemporal history contains no version whose
/// system period is empty or inverted.
#[test]
fn version_chains_are_well_formed() {
    let (engine, _) = build_engine_a();
    let customer_id = engine.resolve("customer").unwrap();
    let def = engine.table_def(customer_id);
    let base = def.schema.arity();
    let (app_s, app_e, sys_s, sys_e) = (base, base + 1, base + 2, base + 3);

    let rows = engine
        .scan(customer_id, &SysSpec::All, &AppSpec::All, &[])
        .unwrap()
        .rows;
    let mut by_key: HashMap<i64, Vec<(u64, u64, i64, i64)>> = HashMap::new();
    for r in &rows {
        let key = r.get(col::customer::CUSTKEY).as_int().unwrap();
        let ss = r.get(sys_s).as_sys_time().unwrap().0;
        let se = r.get(sys_e).as_sys_time().unwrap().0;
        let as_ = r.get(app_s).as_date().unwrap().0;
        let ae = r.get(app_e).as_date().unwrap().0;
        assert!(ss < se, "empty/inverted system period for key {key}");
        assert!(as_ < ae, "empty/inverted application period for key {key}");
        by_key.entry(key).or_default().push((ss, se, as_, ae));
    }
    for (key, versions) in by_key {
        for (i, a) in versions.iter().enumerate() {
            for b in versions.iter().skip(i + 1) {
                let sys_overlap = a.0 < b.1 && b.0 < a.1;
                let app_overlap = a.2 < b.3 && b.2 < a.3;
                assert!(
                    !(sys_overlap && app_overlap),
                    "key {key}: two versions claim the same bitemporal point: {a:?} vs {b:?}"
                );
            }
        }
    }
}

/// The current snapshot equals the AS-OF-now snapshot on every table
/// (implicit vs explicit, Fig 6 — same answer, different cost).
#[test]
fn implicit_current_equals_explicit_now() {
    let (engine, now) = build_engine_a();
    for table in bitempo_dbgen::TPCH_TABLES {
        let id = engine.resolve(table).unwrap();
        let mut implicit = engine
            .scan(id, &SysSpec::Current, &AppSpec::All, &[])
            .unwrap()
            .rows;
        let mut explicit = engine
            .scan(id, &SysSpec::AsOf(now), &AppSpec::All, &[])
            .unwrap()
            .rows;
        implicit.sort();
        explicit.sort();
        assert_eq!(implicit, explicit, "table {table}");
    }
}

/// Non-temporal tables never accumulate history and ignore time travel.
#[test]
fn nontemporal_tables_are_frozen() {
    let (engine, now) = build_engine_a();
    for table in ["region", "nation"] {
        let id = engine.resolve(table).unwrap();
        let stats = engine.stats(id);
        assert_eq!(stats.history_rows, 0, "{table} must have no history");
        let current = engine
            .scan(id, &SysSpec::Current, &AppSpec::All, &[])
            .unwrap()
            .rows;
        let past = engine
            .scan(id, &SysSpec::AsOf(SysTime(1)), &AppSpec::All, &[])
            .unwrap()
            .rows;
        let later = engine
            .scan(id, &SysSpec::AsOf(now), &AppSpec::All, &[])
            .unwrap()
            .rows;
        assert_eq!(current.len(), past.len());
        assert_eq!(current.len(), later.len());
    }
}

/// The degenerate SUPPLIER table: system-versioned, no application period
/// columns in scan output, and updates grow its history.
#[test]
fn supplier_is_degenerate() {
    let (mut engine, _) = build_engine_a();
    let id = engine.resolve("supplier").unwrap();
    let def = engine.table_def(id).clone();
    assert!(!def.has_app_time());
    assert!(def.has_system_time());
    let rows = engine
        .scan(id, &SysSpec::All, &AppSpec::All, &[])
        .unwrap()
        .rows;
    assert_eq!(rows[0].arity(), def.schema.arity() + 2);
    // The Update-Supplier scenario (4 % of a 1 000-scenario history) must
    // have produced history.
    assert!(engine.stats(id).history_rows > 0);
    // Application periods on a degenerate table are rejected.
    let err = engine.insert(
        id,
        rows[0].project(&(0..def.schema.arity()).collect::<Vec<_>>()),
        Some(AppPeriod::since(bitempo_core::AppDate(0))),
    );
    assert!(err.is_err());
}

/// Scenario effects are visible end to end: cancelled orders vanish from
/// the current state but remain reachable by time travel.
#[test]
fn cancelled_orders_remain_in_history() {
    let (engine, now) = build_engine_a();
    let orders_id = engine.resolve("orders").unwrap();
    let all_keys: HashSet<Value> = engine
        .scan(orders_id, &SysSpec::All, &AppSpec::All, &[])
        .unwrap()
        .rows
        .iter()
        .map(|r| r.get(col::orders::ORDERKEY).clone())
        .collect();
    let current_keys: HashSet<Value> = engine
        .scan(orders_id, &SysSpec::Current, &AppSpec::All, &[])
        .unwrap()
        .rows
        .iter()
        .map(|r| r.get(col::orders::ORDERKEY).clone())
        .collect();
    let vanished: Vec<&Value> = all_keys.difference(&current_keys).collect();
    assert!(
        !vanished.is_empty(),
        "a 1 000-scenario history must cancel some orders"
    );
    // Each vanished key is visible at *some* earlier system time.
    let key = vanished[0];
    let mut seen = false;
    for i in 1..=now.0 {
        let rows = engine
            .scan(
                orders_id,
                &SysSpec::AsOf(SysTime(i)),
                &AppSpec::All,
                &[bitempo_engine::ColRange::eq(
                    col::orders::ORDERKEY,
                    key.clone(),
                )],
            )
            .unwrap()
            .rows;
        if !rows.is_empty() {
            seen = true;
            break;
        }
    }
    assert!(seen, "cancelled order must be reachable via time travel");
}
