//! Multi-threaded MVCC isolation stress suite.
//!
//! Concurrent committers and snapshot readers hammer a [`TxnManager`] per
//! engine, then two oracles judge the run:
//!
//! * **Serial-replay oracle** — re-applying the successful transactions in
//!   commit-timestamp order on a fresh engine must reproduce the served
//!   engine's canonical state *byte-identically* (same version stamps, same
//!   rows). First-committer-wins plus the exclusive publish section make
//!   the concurrent history equivalent to that serial one.
//! * **Prefix oracle** — every snapshot read taken mid-storm must equal the
//!   state after some commit prefix: exactly the commits with `ts <= pin`,
//!   never a partially applied transaction (each writer commits two inserts
//!   plus an update atomically, so a torn read would surface immediately).

use bitempo_core::{Key, Pcg32, Value};
use bitempo_engine::testutil::{bitemp_table, simple_row};
use bitempo_engine::{build_engine, BitemporalEngine, SystemKind};
use bitempo_txn::TxnManager;
use bitempo_wal::canonical_state;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Initial hot keys every writer contends on.
const HOT_KEYS: i64 = 8;
/// Transactions attempted per worker thread.
const TXNS_PER_THREAD: i64 = 30;
/// First id used for writer-unique inserts (clear of the hot range).
const INSERT_BASE: i64 = 1_000;

/// One committed writer transaction, as its thread recorded it.
#[derive(Debug, Clone)]
struct CommitDesc {
    ts: u64,
    ins_a: i64,
    ins_b: i64,
    hot: i64,
    val: i64,
}

fn fresh_engine(kind: SystemKind) -> (Box<dyn BitemporalEngine>, bitempo_core::TableId) {
    let mut engine = build_engine(kind);
    let t = engine.create_table(bitemp_table("acct")).unwrap();
    for k in 0..HOT_KEYS {
        engine.insert(t, simple_row(k, 0), None).unwrap();
    }
    engine.commit();
    (engine, t)
}

/// `id -> val` of the current snapshot, via the pinned view.
fn observe(view: &dyn BitemporalEngine, t: bitempo_core::TableId) -> BTreeMap<i64, i64> {
    use bitempo_engine::api::{AppSpec, SysSpec};
    let out = view.scan(t, &SysSpec::Current, &AppSpec::All, &[]).unwrap();
    out.rows
        .iter()
        .map(|r| match (r.get(0), r.get(1)) {
            (Value::Int(id), Value::Int(v)) => (*id, *v),
            other => panic!("unexpected row shape {other:?}"),
        })
        .collect()
}

/// Runs the storm and checks both oracles. Returns (commits, conflicts).
/// `seed` perturbs every worker's stream, so repeated rounds explore
/// different interleavings (the race-hunting tier sweeps it).
fn storm(kind: SystemKind, threads: usize, seed: u64) -> (usize, u64) {
    let (engine, t) = fresh_engine(kind);
    let mgr = TxnManager::new(engine, vec![t], None).unwrap();
    let commits: Mutex<Vec<CommitDesc>> = Mutex::new(Vec::new());
    let reads: Mutex<Vec<(u64, BTreeMap<i64, i64>)>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        for worker in 0..threads {
            let mgr = &mgr;
            let commits = &commits;
            let reads = &reads;
            s.spawn(move || {
                let mut rng = Pcg32::new(0xB17E_5EED ^ kind as u64 ^ seed, worker as u64);
                for i in 0..TXNS_PER_THREAD {
                    if rng.chance(0.4) {
                        // Reader: pin a snapshot, record what it shows,
                        // then release the pin either way — half roll back
                        // explicitly, half rely on the drop backstop, so
                        // both unpin paths stay exercised.
                        let txn = mgr.begin().unwrap();
                        {
                            let snap = txn.snapshot();
                            let seen = observe(&snap.view(), t);
                            reads.lock().unwrap().push((txn.pin().0, seen));
                        }
                        if rng.chance(0.5) {
                            txn.rollback();
                        }
                        continue;
                    }
                    // Writer: two inserts + one hot-key update, atomically.
                    let serial = worker as i64 * TXNS_PER_THREAD + i;
                    let ins_a = INSERT_BASE + serial * 2;
                    let ins_b = ins_a + 1;
                    let val = serial + 1;
                    let hot = rng.int_range(0, HOT_KEYS - 1);
                    loop {
                        let mut txn = mgr.begin().unwrap();
                        txn.insert(t, simple_row(ins_a, val), None).unwrap();
                        txn.insert(t, simple_row(ins_b, val), None).unwrap();
                        txn.update(t, &Key::int(hot), &[(1, Value::Int(val))], None)
                            .unwrap();
                        match txn.commit() {
                            Ok(ts) => {
                                commits.lock().unwrap().push(CommitDesc {
                                    ts: ts.0,
                                    ins_a,
                                    ins_b,
                                    hot,
                                    val,
                                });
                                break;
                            }
                            Err(bitempo_core::Error::Conflict(_)) => continue,
                            Err(e) => panic!("unexpected commit failure: {e}"),
                        }
                    }
                }
            });
        }
    });

    let conflicts = mgr
        .counters()
        .conflicts
        .load(std::sync::atomic::Ordering::Relaxed);
    // Pin accounting balances after every resolution path has run:
    // commit releases at publish, conflict-abort and rollback release
    // eagerly, drop is the backstop. A leak here would pin the commit-log
    // pruning floor forever.
    assert_eq!(
        mgr.active_pins(),
        0,
        "{kind}/{threads}: leaked snapshot pins"
    );
    assert_eq!(
        mgr.counters()
            .released
            .load(std::sync::atomic::Ordering::Relaxed),
        mgr.counters()
            .snapshots
            .load(std::sync::atomic::Ordering::Relaxed),
        "{kind}/{threads}: released pins must balance pinned snapshots"
    );
    let (served, ids, _) = mgr.close().unwrap();

    let mut commits = commits.into_inner().unwrap();
    commits.sort_by_key(|c| c.ts);
    // Commit timestamps must be dense and unique: one publish at a time.
    for (i, c) in commits.iter().enumerate() {
        assert_eq!(c.ts, 2 + i as u64, "{kind}/{threads}: dense commit order");
    }

    // Serial-replay oracle: same transactions, commit order, fresh engine.
    let (mut oracle, ot) = fresh_engine(kind);
    for c in &commits {
        oracle.insert(ot, simple_row(c.ins_a, c.val), None).unwrap();
        oracle.insert(ot, simple_row(c.ins_b, c.val), None).unwrap();
        oracle
            .update(ot, &Key::int(c.hot), &[(1, Value::Int(c.val))], None)
            .unwrap();
        let ts = oracle.commit();
        assert_eq!(ts.0, c.ts, "{kind}/{threads}: oracle reuses the stamp");
    }
    assert_eq!(
        canonical_state(served.as_ref(), &ids).unwrap(),
        canonical_state(oracle.as_ref(), &[ot]).unwrap(),
        "{kind}/{threads}: served state must equal the serial replay, byte for byte"
    );

    // Prefix oracle: every snapshot read equals some commit-prefix state.
    let mut prefix: BTreeMap<i64, i64> = (0..HOT_KEYS).map(|k| (k, 0)).collect();
    let mut states: BTreeMap<u64, BTreeMap<i64, i64>> = BTreeMap::new();
    states.insert(1, prefix.clone());
    for c in &commits {
        prefix.insert(c.ins_a, c.val);
        prefix.insert(c.ins_b, c.val);
        prefix.insert(c.hot, c.val);
        states.insert(c.ts, prefix.clone());
    }
    for (pin, seen) in reads.into_inner().unwrap() {
        let want = states
            .range(..=pin)
            .next_back()
            .map(|(_, s)| s)
            .unwrap_or_else(|| panic!("no state at or before pin {pin}"));
        assert_eq!(
            &seen, want,
            "{kind}/{threads}: snapshot pinned at {pin} must see exactly that prefix"
        );
    }

    (commits.len(), conflicts)
}

#[test]
fn single_threaded_history_is_its_own_oracle() {
    for kind in SystemKind::ALL {
        let (commits, conflicts) = storm(kind, 1, 0);
        assert!(commits > 0, "{kind}: the mix must commit something");
        assert_eq!(conflicts, 0, "{kind}: one thread can never conflict");
    }
}

#[test]
fn eight_threads_serialize_to_the_commit_order() {
    for kind in SystemKind::ALL {
        let (commits, _) = storm(kind, 8, 0);
        assert!(commits > 0, "{kind}: the mix must commit something");
    }
}

/// The race-hunting tier: the same oracles, run under an elevated thread
/// count for several rounds of distinct seeds, so CI's dedicated job
/// explores many more interleavings than the default suite. Locally this
/// stays cheap (4 threads, 1 round); CI raises both via the environment:
///
/// ```text
/// BITEMPO_STRESS_THREADS=16 BITEMPO_STRESS_ROUNDS=8 \
///     cargo test --release -p bitempo-tests race_hunting_tier
/// ```
///
/// Every round's seed is printed on entry, so a failure names the exact
/// `(threads, seed)` pair to replay deterministically.
#[test]
fn race_hunting_tier_explores_seeded_interleavings() {
    let threads: usize = std::env::var("BITEMPO_STRESS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let rounds: u64 = std::env::var("BITEMPO_STRESS_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    for round in 0..rounds {
        // Distinct, reproducible per-round seed (splitmix-style spread).
        let seed = (round + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        println!("race-hunt round {round}: threads={threads} seed={seed:#x}");
        for kind in SystemKind::ALL {
            let (commits, _) = storm(kind, threads, seed);
            assert!(commits > 0, "{kind}: round {round} must commit something");
        }
    }
}
