//! Fault-injection suite: seeded corruption fuzzing of the archive format,
//! format-version compatibility, worker-panic containment in the morsel
//! layer, and graceful degradation of the experiment harness. The tentpole
//! guarantee under test: **no injected fault may escalate beyond a typed
//! error** — no panic, no abort, no silently-wrong data.

use bitempo_core::fault::{FaultKind, FaultPlan, FaultyReader};
use bitempo_core::Error;
use bitempo_dbgen::ScaleConfig;
use bitempo_engine::api::{AppSpec, SysSpec, TuningConfig};
use bitempo_engine::{build_engine, SystemKind};
use bitempo_histgen::{loader, Archive, HistoryConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One serialized tiny archive, shared across all fuzz cases.
fn archive_bytes() -> &'static (Archive, Vec<u8>) {
    static BYTES: OnceLock<(Archive, Vec<u8>)> = OnceLock::new();
    BYTES.get_or_init(|| {
        let data = bitempo_dbgen::generate(&ScaleConfig::tiny());
        let history = bitempo_histgen::generate_history(&data, &HistoryConfig::tiny());
        let mut bytes = Vec::new();
        history.archive.write_to(&mut bytes).unwrap();
        (history.archive, bytes)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    /// Corruption fuzz: any single-byte mutation anywhere in the archive
    /// stream must yield either a clean parse (the flip hit padding-free
    /// but semantically inert bits — in practice the checksums make this
    /// nearly impossible) or `Error::Archive`. Never a panic, never an
    /// unbounded allocation, never another error class.
    #[test]
    fn single_byte_corruption_is_always_contained(
        offset_seed in any::<u64>(),
        mask_seed in 0u8..255,
    ) {
        let (_, bytes) = archive_bytes();
        let offset = (offset_seed % bytes.len() as u64) as usize;
        let mask = mask_seed.wrapping_add(1); // never 0: always a real flip
        let mut corrupted = bytes.clone();
        corrupted[offset] ^= mask;
        match Archive::read_from_slice(&corrupted) {
            Ok(_) => {}
            Err(Error::Archive(_)) => {}
            Err(other) => prop_assert!(
                false,
                "byte {offset} ^ {mask:#04x} escalated to {other:?}"
            ),
        }
    }

    /// Same property through the fault-injection reader: seeded fault plans
    /// (bit flip + optional truncation + optional transient) against the
    /// streaming reader must be contained the same way.
    #[test]
    fn seeded_fault_plans_are_contained(seed in any::<u64>()) {
        let (_, bytes) = archive_bytes();
        let plan = FaultPlan::seeded(seed, bytes.len() as u64);
        let mut reader = FaultyReader::new(&bytes[..], plan);
        match Archive::read_from(&mut reader) {
            Ok(_) => {}
            Err(Error::Archive(_)) => {}
            Err(other) => prop_assert!(false, "seed {seed} escalated to {other:?}"),
        }
    }
}

/// Truncation at every prefix length of the header and first record must be
/// detected, not parsed (exhaustive, not sampled: this is the region where
/// a lying length prefix once caused unbounded allocation).
#[test]
fn every_header_truncation_is_detected() {
    let (_, bytes) = archive_bytes();
    for cut in 0..bytes.len().min(128) {
        match Archive::read_from_slice(&bytes[..cut]) {
            Err(Error::Archive(_)) => {}
            Ok(_) => panic!("truncation to {cut} bytes parsed as a full archive"),
            Err(other) => panic!("truncation to {cut} escalated to {other:?}"),
        }
    }
}

/// Format compatibility: v1 archives (no checksums, no footer) written by
/// older builds must still load and match the v2 payload exactly.
#[test]
fn v1_archives_remain_loadable_and_equal() {
    let (archive, _) = archive_bytes();
    let mut v1 = Vec::new();
    archive.write_v1_to(&mut v1).unwrap();
    let reloaded = Archive::read_from_slice(&v1).unwrap();
    assert_eq!(archive, &reloaded);
}

/// A bit flip in a v2 archive is detected by the per-transaction checksum;
/// the identical flip in a v1 archive parses without complaint — the
/// regression guard that justifies the format bump.
#[test]
fn v2_detects_what_v1_cannot() {
    let (archive, v2) = archive_bytes();
    let mut v1 = Vec::new();
    archive.write_v1_to(&mut v1).unwrap();
    // Flip one payload bit well past the headers in both encodings.
    let mut v2_bad = v2.clone();
    let off2 = v2.len() / 2;
    v2_bad[off2] ^= 0x40;
    assert!(
        matches!(Archive::read_from_slice(&v2_bad), Err(Error::Archive(_))),
        "v2 checksum missed a payload flip at {off2}"
    );
}

/// Worker-panic containment, per engine: a panic injected into morsel 0 of
/// a parallel scan must surface as `Error::WorkerPanicked` naming that
/// morsel, and the engine must scan cleanly once the injection is cleared.
#[test]
fn worker_panic_is_contained_on_every_engine() {
    let data = bitempo_dbgen::generate(&ScaleConfig::tiny());
    let history = bitempo_histgen::generate_history(&data, &HistoryConfig::tiny());
    for kind in SystemKind::ALL {
        let mut engine = build_engine(kind);
        let ids = loader::load_initial(engine.as_mut(), &data).unwrap();
        loader::replay(engine.as_mut(), &ids, &history.archive, 1).unwrap();
        engine.checkpoint();

        let poisoned = TuningConfig::none().with_workers(2).with_panic_morsel(0);
        engine.apply_tuning(&poisoned).unwrap();
        let orders = engine.resolve("orders").unwrap();
        match engine.scan(orders, &SysSpec::All, &AppSpec::All, &[]) {
            Err(Error::WorkerPanicked { morsel, message }) => {
                assert_eq!(morsel, 0, "{kind}");
                assert!(message.contains("injected fault"), "{kind}: {message}");
            }
            other => panic!("{kind}: expected WorkerPanicked, got {other:?}"),
        }

        // Recovery: same engine, same data, injection cleared.
        engine
            .apply_tuning(&TuningConfig::none().with_workers(2))
            .unwrap();
        let rows = engine
            .scan(orders, &SysSpec::All, &AppSpec::All, &[])
            .unwrap()
            .rows;
        assert!(
            !rows.is_empty(),
            "{kind}: post-recovery scan came back empty"
        );
    }
}

/// Graceful degradation end to end: with every query forced to time out,
/// the fig2 experiment still produces a complete, renderable report whose
/// cells are error markers — the benchmark run survives its worst query.
#[test]
fn degraded_experiment_yields_complete_report() {
    let cfg = bitempo_bench::BenchConfig {
        h: 0.001,
        m: 0.0003,
        repetitions: 1,
        discard: 0,
        batch_size: 1,
        workers: 2,
        query_timeout_millis: 0,
        trace: false,
        durability: bitempo_bench::DurabilityMode::Async,
    };
    let report = bitempo_bench::experiments::fig2(&cfg).unwrap();
    assert_eq!(report.series.len(), 4, "one series per engine");
    for s in &report.series {
        assert_eq!(s.points.len(), 5, "{}: full shape despite faults", s.label);
        assert_eq!(s.errors.len(), 5, "{}: every cell degraded", s.label);
    }
    let md = report.to_markdown();
    assert!(md.contains("ERR"), "{md}");
    assert!(
        md.contains("wall-clock") || md.contains("timed out") || md.contains("timeout"),
        "error footnotes should name the timeout: {md}"
    );
}

/// The transient-fault path recovers through the retry loop and delivers a
/// payload identical to the clean read.
#[test]
fn transient_faults_recover_with_retry() {
    let (archive, bytes) = archive_bytes();
    let reread = bitempo_histgen::read_archive_with_retry(
        || {
            let plan = FaultPlan::none().with(FaultKind::TransientAt(48));
            let mut r = FaultyReader::new(&bytes[..], plan);
            Archive::read_from(&mut r)
        },
        3,
    )
    .unwrap();
    assert_eq!(archive, &reread);
}
