//! Crash–recovery equivalence, end to end, verified by fault injection.
//!
//! The contract under test (DESIGN.md §10): for any crash point in the WAL
//! stream, recovery from the surviving bytes plus the captured checkpoints
//! rebuilds an engine whose state is equivalent to an uncrashed oracle that
//! replayed exactly the recovered prefix — on every engine, under both
//! durability modes that acknowledge before the end of the run. Equivalence
//! is asserted twice per cell: full canonical state (every version of every
//! table) and the five-class query probe from `bitempo_workloads::suite`.
//!
//! The torn-tail fuzz below is satellite coverage for the byte layer: a log
//! truncated at *every* offset of its final record, and 100 seeded single
//! bit-flips anywhere in the stream, must never panic, and must yield either
//! the exact clean prefix or a clean truncation report.

use bitempo_core::fault::{FaultKind, FaultPlan, FaultyWriter};
use bitempo_core::Pcg32;
use bitempo_dbgen::{ScaleConfig, TpchData};
use bitempo_engine::api::TuningConfig;
use bitempo_engine::{build_engine, SystemKind};
use bitempo_histgen::{generate_history, Archive, HistoryConfig};
use bitempo_storage::wal::{self, DurabilityMode, WAL_HEADER_LEN};
use bitempo_wal::{
    canonical_state, durable_replay, oracle_replay, recover, DurableOptions, SharedBuf, TxnWal,
};
use bitempo_workloads::{five_class_answers, five_class_diff, Ctx, QueryParams};
use std::sync::OnceLock;

/// Checkpoint cadence used throughout: small enough that every crash point
/// exercises a checkpoint + WAL-tail recovery, not a full replay.
const CHECKPOINT_EVERY: u64 = 25;

fn world() -> &'static (TpchData, Archive) {
    static WORLD: OnceLock<(TpchData, Archive)> = OnceLock::new();
    WORLD.get_or_init(|| {
        let data = bitempo_dbgen::generate(&ScaleConfig {
            h: 0.0004,
            seed: 0xCAFE,
        });
        let hist = generate_history(
            &data,
            &HistoryConfig {
                m: 0.0001, // 100 scenario transactions
                seed: 0x5EED,
                scenarios_per_day: 4,
            },
        );
        (data, hist.archive)
    })
}

/// A clean (uncrashed, strict-mode) run on System A: the full log bytes,
/// the captured checkpoints, and the commit count. The WAL bytes are
/// engine-independent (they encode archive transactions, not engine
/// state), so the fuzz tests can corrupt this one stream.
fn clean_log() -> &'static (Vec<u8>, Vec<Vec<u8>>, u64) {
    static CLEAN: OnceLock<(Vec<u8>, Vec<Vec<u8>>, u64)> = OnceLock::new();
    CLEAN.get_or_init(|| {
        let (data, archive) = world();
        let opts = DurableOptions {
            mode: DurabilityMode::Strict,
            checkpoint_every: CHECKPOINT_EVERY,
        };
        let buf = SharedBuf::new();
        let mut engine = build_engine(SystemKind::A);
        let log = TxnWal::create(Box::new(buf.clone()), opts.mode).unwrap();
        let run = durable_replay(engine.as_mut(), data, archive, log, &opts).unwrap();
        assert!(run.crashed.is_none());
        (buf.snapshot(), run.checkpoints, run.commits)
    })
}

/// The full fault matrix of the issue's acceptance criterion: seeded crash
/// points mid-stream × all four engines × both acknowledged-durability
/// modes. Every cell must recover a prefix that the oracle confirms, with
/// zero skipped operations.
#[test]
fn crash_recovery_matches_the_oracle_on_every_engine_and_mode() {
    let (data, archive) = world();
    let tuning = TuningConfig::none().with_workers(1);
    let clean_len = clean_log().0.len() as u64;
    let mut rng = Pcg32::new(0xC4A5_4B17, 0xD0);
    for kind in SystemKind::ALL {
        for mode in [DurabilityMode::Strict, DurabilityMode::Batched(5)] {
            let opts = DurableOptions {
                mode,
                checkpoint_every: CHECKPOINT_EVERY,
            };
            for _ in 0..2 {
                // Crash strictly inside the record stream, past the header.
                let cut = rng.int_range(WAL_HEADER_LEN as i64 + 1, clean_len as i64 - 1) as u64;
                let label = format!("{kind}/{}/cut={cut}", mode.label());

                let buf = SharedBuf::new();
                let sink = FaultyWriter::new(
                    buf.clone(),
                    FaultPlan::none().with(FaultKind::TruncateAt(cut)),
                );
                let mut engine = build_engine(kind);
                let log = TxnWal::create(Box::new(sink), mode).unwrap();
                let run = durable_replay(engine.as_mut(), data, archive, log, &opts)
                    .unwrap_or_else(|e| panic!("{label}: replay errored hard: {e}"));
                assert!(run.crashed.is_some(), "{label}: the cut must fire");

                let rec = recover(kind, &buf.snapshot(), &run.checkpoints, &tuning)
                    .unwrap_or_else(|e| panic!("{label}: recovery failed: {e}"));
                if mode == DurabilityMode::Strict {
                    // Strict acknowledges only durable commits, so recovery
                    // must restore every one of them.
                    assert_eq!(rec.report.commits, run.commits, "{label}");
                } else {
                    // Group commit may lose an acknowledged suffix; never
                    // more than was committed.
                    assert!(rec.report.commits <= run.commits, "{label}");
                }
                // Zero skips: everything between the checkpoint and the end
                // of the valid WAL prefix was replayed.
                assert_eq!(
                    rec.report.replayed,
                    rec.report.commits - rec.report.checkpoint_seq,
                    "{label}: replay skipped records"
                );

                let (oracle, oracle_ids) =
                    oracle_replay(kind, data, archive, rec.report.commits, &opts, &tuning).unwrap();
                assert_eq!(
                    canonical_state(rec.engine.as_ref(), &rec.ids).unwrap(),
                    canonical_state(oracle.as_ref(), &oracle_ids).unwrap(),
                    "{label}: full state diverges from the oracle"
                );

                let params = QueryParams::derive(oracle.as_ref()).unwrap();
                let oracle_ctx = Ctx::new(oracle.as_ref()).unwrap();
                let recovered_ctx = Ctx::new(rec.engine.as_ref()).unwrap();
                let want = five_class_answers(&oracle_ctx, &params).unwrap();
                let got = five_class_answers(&recovered_ctx, &params).unwrap();
                if let Some(diff) = five_class_diff(&got, &want) {
                    panic!("{label}: query class diverges: {diff}");
                }
            }
        }
    }
}

/// Satellite 3a: truncate the WAL at every byte offset of the final record.
/// The scan layer must always salvage exactly the first `commits - 1`
/// records — the exact prefix — and report a clean cut only at the record
/// boundary itself. A seeded sample of offsets goes through full recovery.
#[test]
fn truncating_anywhere_in_the_final_record_keeps_the_exact_prefix() {
    let (bytes, checkpoints, commits) = clean_log();
    let full = wal::scan(bytes);
    assert!(full.is_clean());
    assert_eq!(full.records.len() as u64, *commits);
    // Chopping one byte off invalidates exactly the final record, so the
    // valid prefix of that scan ends where the final record starts.
    let last_start = wal::scan(&bytes[..bytes.len() - 1]).valid_len as usize;
    assert!(last_start > WAL_HEADER_LEN && last_start < bytes.len());

    for cut in last_start..bytes.len() {
        let scan = wal::scan(&bytes[..cut]);
        assert_eq!(
            scan.records.len() as u64,
            *commits - 1,
            "cut at {cut}: wrong record count"
        );
        assert_eq!(
            scan.valid_len as usize, last_start,
            "cut at {cut}: wrong truncation point"
        );
        if cut == last_start {
            assert!(scan.is_clean(), "cut at the boundary is a clean log");
        } else {
            assert!(scan.torn.is_some(), "cut at {cut}: tear not reported");
        }
    }

    // End to end on a seeded sample: recovery restores exactly the prefix.
    // The clean run's final checkpoint snapshots the *complete* state (the
    // commit count is a cadence multiple), which would let recovery ignore
    // the WAL tail entirely — drop it so the tail is load-bearing.
    let checkpoints = &checkpoints[..checkpoints.len() - 1];
    let tuning = TuningConfig::none().with_workers(1);
    let mut rng = Pcg32::new(0xF0_22, 7);
    for _ in 0..6 {
        let cut = rng.int_range(last_start as i64, bytes.len() as i64 - 1) as usize;
        let rec = recover(SystemKind::A, &bytes[..cut], checkpoints, &tuning)
            .unwrap_or_else(|e| panic!("cut at {cut}: recovery failed: {e}"));
        assert_eq!(rec.report.commits, *commits - 1, "cut at {cut}");
        assert_eq!(
            rec.report.replayed,
            rec.report.commits - rec.report.checkpoint_seq,
            "cut at {cut}: replay skipped records"
        );
    }
}

/// Satellite 3b: 100 seeded single bit-flips anywhere in the stream. The
/// scan must never panic, must never fabricate records, and every record it
/// keeps must be byte-identical to the clean log's prefix; full recovery
/// from the corrupt bytes must either succeed with a verified prefix or —
/// never — fail.
#[test]
fn seeded_bit_flips_never_panic_and_salvage_a_true_prefix() {
    let (bytes, checkpoints, commits) = clean_log();
    let clean = wal::scan(bytes);
    let tuning = TuningConfig::none().with_workers(1);
    let mut rng = Pcg32::new(0xB17_F11D, 3);
    for trial in 0..100 {
        let mut corrupt = bytes.clone();
        let offset = rng.int_range(0, corrupt.len() as i64 - 1) as usize;
        let mask = rng.int_range(1, 255) as u8;
        corrupt[offset] ^= mask;
        let label = format!("trial {trial}: flip {mask:#04x} at {offset}");

        let scan = wal::scan(&corrupt);
        assert!(
            scan.records.len() as u64 <= *commits,
            "{label}: fabricated records"
        );
        for (i, rec) in scan.records.iter().enumerate() {
            assert_eq!(rec.seq, i as u64 + 1, "{label}: sequence gap");
            assert_eq!(
                rec.payload, clean.records[i].payload,
                "{label}: salvaged record {i} differs from the clean log"
            );
        }

        let rec = recover(SystemKind::A, &corrupt, checkpoints, &tuning)
            .unwrap_or_else(|e| panic!("{label}: recovery failed: {e}"));
        assert!(rec.report.commits <= *commits, "{label}");
        assert_eq!(
            rec.report.replayed,
            rec.report.commits - rec.report.checkpoint_seq,
            "{label}: replay skipped records"
        );
    }
}
