//! Cross-validation of the SQL layer against the programmatic workload
//! queries on a loaded benchmark instance: the same temporal question asked
//! through SQL must return the same answer as the operator-tree form.

use bitempo_core::Value;
use bitempo_dbgen::{col, ScaleConfig};
use bitempo_engine::api::{AppSpec, SysSpec};
use bitempo_engine::{build_engine, BitemporalEngine, SystemKind};
use bitempo_histgen::{loader, HistoryConfig};
use bitempo_sql::run_sql;
use bitempo_workloads::{key, tt, Ctx, QueryParams};

fn build() -> (Box<dyn BitemporalEngine>, QueryParams) {
    let data = bitempo_dbgen::generate(&ScaleConfig::with_h(0.001));
    let history = bitempo_histgen::generate_history(&data, &HistoryConfig::with_m(0.0005));
    let mut engine = build_engine(SystemKind::A);
    let ids = loader::load_initial(engine.as_mut(), &data).unwrap();
    loader::replay(engine.as_mut(), &ids, &history.archive, 1).unwrap();
    let params = QueryParams::derive(engine.as_ref()).unwrap();
    (engine, params)
}

#[test]
fn sql_t1_matches_programmatic_t1() {
    let (mut engine, p) = build();
    let programmatic = {
        let ctx = Ctx::new(engine.as_ref()).unwrap();
        tt::t1(&ctx, SysSpec::AsOf(p.sys_mid), AppSpec::AsOf(p.app_mid)).unwrap()
    };
    let sql = format!(
        "SELECT AVG(ps_supplycost), COUNT(*) FROM partsupp \
         FOR SYSTEM_TIME AS OF {} FOR BUSINESS_TIME AS OF {}",
        p.sys_mid.0, p.app_mid.0
    );
    let out = run_sql(engine.as_mut(), &sql).unwrap();
    assert_eq!(out.rows().len(), 1);
    let (avg_sql, n_sql) = (
        out.rows()[0].get(0).as_double().unwrap(),
        out.rows()[0].get(1).as_int().unwrap(),
    );
    let (avg_prog, n_prog) = (
        programmatic[0].get(0).as_double().unwrap(),
        programmatic[0].get(1).as_int().unwrap(),
    );
    assert_eq!(n_sql, n_prog);
    assert!((avg_sql - avg_prog).abs() < 1e-9);
}

#[test]
fn sql_k1_matches_programmatic_k1() {
    let (mut engine, p) = build();
    let programmatic = {
        let ctx = Ctx::new(engine.as_ref()).unwrap();
        key::k1(&ctx, &p.hot_customer, SysSpec::All, AppSpec::All).unwrap()
    };
    let bitempo_core::Key::Int(custkey) = p.hot_customer else {
        panic!("hot customer is a simple key")
    };
    let sql = format!(
        "SELECT c_custkey, c_name, c_acctbal, sys_start FROM customer \
         FOR SYSTEM_TIME ALL FOR BUSINESS_TIME ALL \
         WHERE c_custkey = {custkey} ORDER BY sys_start"
    );
    let out = run_sql(engine.as_mut(), &sql).unwrap();
    assert_eq!(out.rows().len(), programmatic.len());
    let (sys_start, _) = {
        let ctx = Ctx::new(engine.as_ref()).unwrap();
        ctx.sys_cols(ctx.t.customer)
    };
    for (sql_row, prog_row) in out.rows().iter().zip(&programmatic) {
        assert_eq!(sql_row.get(0), prog_row.get(col::customer::CUSTKEY));
        assert_eq!(sql_row.get(1), prog_row.get(col::customer::NAME));
        assert_eq!(sql_row.get(2), prog_row.get(col::customer::ACCTBAL));
        assert_eq!(sql_row.get(3), prog_row.get(sys_start));
    }
}

#[test]
fn sql_time_travel_counts_match_scans() {
    let (mut engine, p) = build();
    for (sys_sql, sys_spec) in [
        (String::new(), SysSpec::Current),
        (
            format!("FOR SYSTEM_TIME AS OF {}", p.sys_initial.0),
            SysSpec::AsOf(p.sys_initial),
        ),
        ("FOR SYSTEM_TIME ALL".to_string(), SysSpec::All),
        (
            format!(
                "FOR SYSTEM_TIME FROM {} TO {}",
                p.sys_initial.0, p.sys_mid.0
            ),
            SysSpec::Range(bitempo_core::Period::new(p.sys_initial, p.sys_mid)),
        ),
    ] {
        let expected = engine
            .scan(
                engine.resolve("orders").unwrap(),
                &sys_spec,
                &AppSpec::All,
                &[],
            )
            .unwrap()
            .rows
            .len() as i64;
        let out = run_sql(
            engine.as_mut(),
            &format!("SELECT COUNT(*) FROM orders {sys_sql}"),
        )
        .unwrap();
        assert_eq!(
            out.rows()[0].get(0),
            &Value::Int(expected),
            "spec {sys_spec:?}"
        );
    }
}

#[test]
fn sql_pushdown_uses_pk_index() {
    // `WHERE c_custkey = k` must reach the engine as a pushable predicate,
    // enabling the PK lookup path (this is what makes the SQL layer honest
    // about plan behaviour, not just results).
    let (mut engine, p) = build();
    let bitempo_core::Key::Int(custkey) = p.hot_customer else {
        panic!()
    };
    // Direct engine probe for comparison.
    let direct = engine
        .lookup_key(
            engine.resolve("customer").unwrap(),
            &p.hot_customer,
            &SysSpec::Current,
            &AppSpec::All,
        )
        .unwrap();
    assert!(matches!(
        direct.partition_paths[0],
        bitempo_engine::AccessPath::KeyLookup(_)
    ));
    let out = run_sql(
        engine.as_mut(),
        &format!("SELECT c_name FROM customer WHERE c_custkey = {custkey}"),
    )
    .unwrap();
    assert_eq!(out.rows().len(), direct.rows.len());
}

#[test]
fn sql_aggregation_matches_manual_grouping() {
    let (mut engine, _) = build();
    let orders = engine.resolve("orders").unwrap();
    let rows = engine
        .scan(orders, &SysSpec::Current, &AppSpec::All, &[])
        .unwrap()
        .rows;
    let mut by_status: std::collections::HashMap<String, (i64, f64)> = Default::default();
    for r in &rows {
        let status = r
            .get(col::orders::ORDERSTATUS)
            .as_str()
            .unwrap()
            .to_string();
        let price = r.get(col::orders::TOTALPRICE).as_double().unwrap();
        let e = by_status.entry(status).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += price;
    }
    let out = run_sql(
        engine.as_mut(),
        "SELECT o_orderstatus, COUNT(*), SUM(o_totalprice) FROM orders \
         GROUP BY o_orderstatus ORDER BY o_orderstatus",
    )
    .unwrap();
    assert_eq!(out.rows().len(), by_status.len());
    for row in out.rows() {
        let status = row.get(0).as_str().unwrap();
        let (count, sum) = by_status[status];
        assert_eq!(row.get(1), &Value::Int(count));
        assert!((row.get(2).as_double().unwrap() - sum).abs() < 1e-6);
    }
}
