//! Cost-based optimizer contract, driven through the public engine API:
//!
//! 1. **Crossover** — with the temporal index tuned, a selective system-time
//!    probe must come back as an index access and an unselective one as a
//!    sequential scan, on all four engines. No threshold knob exists any
//!    more; the switch falls out of estimated work.
//! 2. **Equivalence** — whatever path the optimizer picks under whatever
//!    tuning, the answer must equal the untuned oracle's. B-Tree and GiST
//!    paths emit in index order, so cross-tuning comparison is canonical
//!    (sorted), matching the engine contract; the temporal-index path
//!    additionally promises slot order and is held to byte-identical
//!    output, matching `tindex_equivalence`.
//! 3. **String-column selectivity** — equality on an indexed string column
//!    is priced from the index's distinct-key count: many distinct values
//!    make the B-Tree win, few make the scan win.
//! 4. **Empty partitions** — scans of empty tables short-circuit before any
//!    estimation (the old `len().max(1)` fabricated a phantom row).
//! 5. **Adaptive re-planning** — with `adaptive` tuning, a repeated
//!    misestimated query switches paths on re-plan without changing its
//!    answer.

use bitempo_core::{
    AppDate, Column, DataType, Key, Period, Row, Schema, SysTime, TableDef, TemporalClass, Value,
};
use bitempo_engine::api::{AccessPath, AppSpec, BitemporalEngine, ColRange, SysSpec, TuningConfig};
use bitempo_engine::{build_engine, SystemKind};
use bitempo_workloads::sort_canonical;

fn int_table() -> TableDef {
    TableDef::new(
        "t",
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("val", DataType::Int),
        ]),
        vec![0],
        TemporalClass::Bitemporal,
        Some("vt"),
    )
    .unwrap()
}

/// 300 keys, one commit each (system times 1..=300), app periods striding
/// the axis, then sequenced churn on every fifth key so history partitions
/// are populated too.
fn grown_engine(
    kind: SystemKind,
    tuning: &TuningConfig,
) -> (Box<dyn BitemporalEngine>, bitempo_core::TableId) {
    let mut e = build_engine(kind);
    let t = e.create_table(int_table()).unwrap();
    for i in 0..300i64 {
        let app = Period::new(AppDate(i), AppDate(i + 20));
        e.insert(
            t,
            Row::new(vec![Value::Int(i), Value::Int(i * 7)]),
            Some(app),
        )
        .unwrap();
        e.commit();
    }
    for i in (0..300i64).step_by(5) {
        e.update(t, &Key::int(i), &[(1, Value::Int(-i))], None)
            .unwrap();
    }
    for i in (0..300i64).step_by(31) {
        e.delete(
            t,
            &Key::int(i),
            Some(Period::new(AppDate(i), AppDate(i + 3))),
        )
        .unwrap();
    }
    e.commit();
    e.apply_tuning(tuning).unwrap();
    (e, t)
}

/// The spec grid the equivalence comparisons run — points, ranges, and both
/// dimensions combined, at selective and unselective positions.
fn spec_grid() -> Vec<(SysSpec, AppSpec)> {
    vec![
        (SysSpec::Current, AppSpec::All),
        (SysSpec::All, AppSpec::All),
        (SysSpec::AsOf(SysTime(4)), AppSpec::All),
        (SysSpec::AsOf(SysTime(280)), AppSpec::All),
        (SysSpec::Current, AppSpec::AsOf(AppDate(17))),
        (SysSpec::AsOf(SysTime(9)), AppSpec::AsOf(AppDate(5))),
        (
            SysSpec::Range(Period::new(SysTime(3), SysTime(11))),
            AppSpec::All,
        ),
        (
            SysSpec::Current,
            AppSpec::Range(Period::new(AppDate(40), AppDate(55))),
        ),
        (
            SysSpec::Range(Period::new(SysTime(250), SysTime::MAX)),
            AppSpec::Range(Period::new(AppDate(10), AppDate(60))),
        ),
    ]
}

#[test]
fn selective_probe_uses_an_index_and_unselective_probe_scans() {
    for kind in SystemKind::ALL {
        let (e, t) = grown_engine(kind, &TuningConfig::temporal().with_workers(1));
        // System time 4: four of ~360 stored versions qualify.
        let early = e
            .scan(t, &SysSpec::AsOf(SysTime(4)), &AppSpec::All, &[])
            .unwrap();
        assert!(
            matches!(early.access, AccessPath::TemporalProbe(_)),
            "{kind}: selective AS OF should probe the temporal index, got {}",
            early.access
        );
        assert!(
            early.metrics.planned_rows > 0,
            "{kind}: chosen plan must surface its row estimate"
        );
        // `SysSpec::All` qualifies every stored version: nothing to prune,
        // the scan must win on cost.
        let all = e.scan(t, &SysSpec::All, &AppSpec::All, &[]).unwrap();
        assert!(
            matches!(all.access, AccessPath::FullScan { .. }),
            "{kind}: unselective scan should stay sequential, got {}",
            all.access
        );
    }
}

#[test]
fn every_tuning_is_byte_identical_to_the_untuned_oracle() {
    let tunings: Vec<(&str, TuningConfig)> = vec![
        ("time", TuningConfig::time()),
        ("key+time", TuningConfig::key_time()),
        ("temporal", TuningConfig::temporal()),
        (
            "gist",
            TuningConfig {
                time_index: true,
                gist: true,
                ..TuningConfig::default()
            },
        ),
        (
            "value(val)",
            TuningConfig {
                value_index: vec![("t".into(), "val".into())],
                ..TuningConfig::default()
            },
        ),
        (
            "everything",
            TuningConfig {
                time_index: true,
                key_time_index: true,
                gist: true,
                temporal_index: true,
                value_index: vec![("t".into(), "val".into())],
                ..TuningConfig::default()
            },
        ),
    ];
    let grid = spec_grid();
    let preds: Vec<Vec<ColRange>> = vec![
        vec![],
        vec![ColRange::eq(1, Value::Int(-40))],
        vec![ColRange::eq(0, Value::Int(123))],
    ];
    for kind in SystemKind::ALL {
        let (oracle, ot) = grown_engine(kind, &TuningConfig::none().with_workers(1));
        for (label, tuning) in &tunings {
            for workers in [1usize, 4] {
                let (tuned, tt) = grown_engine(kind, &tuning.clone().with_workers(workers));
                for (sys, app) in &grid {
                    for p in &preds {
                        let want = oracle.scan(ot, sys, app, p).unwrap();
                        let got = tuned.scan(tt, sys, app, p).unwrap();
                        // The temporal index promises slot order: its
                        // answers must be byte-identical, not just equal
                        // as sets.
                        if *label == "temporal" {
                            assert_eq!(
                                want.rows, got.rows,
                                "{kind} [{label}, workers={workers}] broke output \
                                 order at {sys:?}/{app:?} preds={p:?} (path {})",
                                got.access
                            );
                        } else {
                            let mut w = want.rows.clone();
                            let mut g = got.rows.clone();
                            sort_canonical(&mut w);
                            sort_canonical(&mut g);
                            assert_eq!(
                                w, g,
                                "{kind} [{label}, workers={workers}] diverged from \
                                 the oracle at {sys:?}/{app:?} preds={p:?} (path {})",
                                got.access
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn string_equality_selectivity_comes_from_distinct_key_count() {
    let def = TableDef::new(
        "t",
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("name", DataType::Str),
        ]),
        vec![0],
        TemporalClass::Bitemporal,
        Some("vt"),
    )
    .unwrap();
    let tuning = TuningConfig {
        value_index: vec![("t".into(), "name".into())],
        workers: 1,
        ..TuningConfig::default()
    };
    for kind in SystemKind::ALL {
        // System C models the paper's engine that ignores conventional
        // index tuning entirely (`ignored_indexes`) — there is no value
        // index for the optimizer to price there.
        let has_value_index = kind != SystemKind::C;
        // 300 distinct names: equality is priced at one row — B-Tree wins.
        let mut sparse = build_engine(kind);
        let t = sparse.create_table(def.clone()).unwrap();
        for i in 0..300i64 {
            sparse
                .insert(
                    t,
                    Row::new(vec![
                        Value::Int(i),
                        Value::Str(format!("name-{i:04}").into()),
                    ]),
                    None,
                )
                .unwrap();
        }
        sparse.commit();
        sparse.apply_tuning(&tuning).unwrap();
        let pred = vec![ColRange::eq(1, Value::Str("name-0042".into()))];
        let out = sparse
            .scan(t, &SysSpec::Current, &AppSpec::All, &pred)
            .unwrap();
        if has_value_index {
            assert!(
                matches!(out.access, AccessPath::IndexScan(_)),
                "{kind}: 300 distinct names should make the value index win, got {}",
                out.access
            );
        }
        assert_eq!(out.rows.len(), 1, "{kind}");

        // 3 distinct names, 100 rows each: equality keeps a third of the
        // table — the per-row probe surcharge makes the scan win.
        let mut dense = build_engine(kind);
        let t = dense.create_table(def.clone()).unwrap();
        for i in 0..300i64 {
            dense
                .insert(
                    t,
                    Row::new(vec![
                        Value::Int(i),
                        Value::Str(format!("name-{:04}", i % 3).into()),
                    ]),
                    None,
                )
                .unwrap();
        }
        dense.commit();
        dense.apply_tuning(&tuning).unwrap();
        let pred = vec![ColRange::eq(1, Value::Str("name-0001".into()))];
        let out = dense
            .scan(t, &SysSpec::Current, &AppSpec::All, &pred)
            .unwrap();
        assert!(
            matches!(out.access, AccessPath::FullScan { .. }),
            "{kind}: 3 distinct names keep a third of the table — the scan \
             should win, got {}",
            out.access
        );
        assert_eq!(out.rows.len(), 100, "{kind}");
    }
}

#[test]
fn empty_tables_scan_trivially_under_every_tuning() {
    let tuning = TuningConfig {
        time_index: true,
        key_time_index: true,
        gist: true,
        temporal_index: true,
        workers: 1,
        ..TuningConfig::default()
    };
    for kind in SystemKind::ALL {
        let mut e = build_engine(kind);
        let t = e.create_table(int_table()).unwrap();
        e.apply_tuning(&tuning).unwrap();
        for (sys, app) in spec_grid() {
            let out = e.scan(t, &sys, &app, &[]).unwrap();
            assert!(out.rows.is_empty(), "{kind} at {sys:?}/{app:?}");
            assert!(
                matches!(out.access, AccessPath::FullScan { .. }),
                "{kind}: empty partitions must short-circuit to a trivial \
                 scan, got {} at {sys:?}/{app:?}",
                out.access
            );
            assert_eq!(out.metrics.planned_rows, 0, "{kind} at {sys:?}/{app:?}");
            assert_eq!(out.metrics.index_probes, 0, "{kind} at {sys:?}/{app:?}");
        }
    }
}

#[test]
fn adaptive_replanning_flips_the_path_and_preserves_the_answer() {
    bitempo_query::optimizer::reset_feedback();
    for kind in SystemKind::ALL {
        // App periods leave a gap at day 7: the interval estimator sees
        // every row on one side or the other and prices the probe at ~half
        // the partition, but nothing actually qualifies.
        let mut e = build_engine(kind);
        let t = e.create_table(int_table()).unwrap();
        for i in 0..400i64 {
            let app = if i % 2 == 0 {
                Period::new(AppDate(0), AppDate(5))
            } else {
                Period::new(AppDate(10), AppDate(20))
            };
            e.insert(t, Row::new(vec![Value::Int(i), Value::Int(i)]), Some(app))
                .unwrap();
        }
        e.commit();
        e.apply_tuning(&TuningConfig::temporal().with_adaptive(true).with_workers(1))
            .unwrap();
        let probe = AppSpec::AsOf(AppDate(7));
        let first = e.scan(t, &SysSpec::All, &probe, &[]).unwrap();
        let second = e.scan(t, &SysSpec::All, &probe, &[]).unwrap();
        assert!(
            matches!(first.access, AccessPath::FullScan { .. }),
            "{kind}: the misestimated first plan should scan, got {}",
            first.access
        );
        assert!(
            matches!(second.access, AccessPath::TemporalProbe(_)),
            "{kind}: the observed miss should flip the re-plan to the \
             temporal probe, got {}",
            second.access
        );
        assert!(
            second.metrics.planned_rows < first.metrics.planned_rows,
            "{kind}: feedback must shrink the estimate ({} -> {})",
            first.metrics.planned_rows,
            second.metrics.planned_rows
        );
        assert_eq!(
            first.rows, second.rows,
            "{kind}: re-planning changed the answer"
        );
        bitempo_query::optimizer::reset_feedback();
    }
}
