//! Temporal-index equivalence: the probe paths must be invisible in every
//! answer. An indexed scan returns a candidate *superset* that the engine
//! re-checks against the authoritative periods, and candidates are emitted
//! in ascending slot order — so indexed scans must be **byte-identical**
//! (same rows, same order) to the full-scan oracle, on all four engines,
//! at any worker count. This suite drives that contract with random DML
//! programs and with the adversarial shapes the index must not mangle:
//! degenerate `[s, s)` system periods from same-transaction supersedes and
//! `SysTime::MAX` open intervals.

use bitempo_core::{
    AppDate, Column, DataType, Key, Period, Row, Schema, SysTime, TableDef, TemporalClass, Value,
};
use bitempo_engine::api::{AccessPath, AppSpec, SysSpec, TuningConfig};
use bitempo_engine::{build_engine, BitemporalEngine, SystemKind};
use proptest::prelude::*;

fn table_def() -> TableDef {
    TableDef::new(
        "t",
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("val", DataType::Int),
        ]),
        vec![0],
        TemporalClass::Bitemporal,
        Some("vt"),
    )
    .unwrap()
}

fn app(p: (i64, i64)) -> Period<AppDate> {
    let (a, b) = if p.0 <= p.1 { p } else { (p.1, p.0) };
    Period::new(AppDate(a), AppDate(b + 1))
}

/// The spec grid every comparison runs: current, early/late points, closed
/// ranges, open (`SysTime::MAX`) ranges, and both-dimension combinations.
fn spec_grid(sys_probe: u64, app_probe: i64) -> Vec<(SysSpec, AppSpec)> {
    vec![
        (SysSpec::Current, AppSpec::All),
        (SysSpec::All, AppSpec::All),
        (SysSpec::AsOf(SysTime(2)), AppSpec::All),
        (SysSpec::AsOf(SysTime(sys_probe)), AppSpec::All),
        (
            SysSpec::AsOf(SysTime(sys_probe)),
            AppSpec::AsOf(AppDate(app_probe)),
        ),
        (SysSpec::Current, AppSpec::AsOf(AppDate(app_probe))),
        (
            SysSpec::Range(Period::new(SysTime(sys_probe / 2), SysTime(sys_probe + 1))),
            AppSpec::All,
        ),
        (
            SysSpec::Range(Period::new(SysTime(sys_probe), SysTime::MAX)),
            AppSpec::Range(Period::new(AppDate(app_probe / 2), AppDate(app_probe + 1))),
        ),
    ]
}

/// Scans the grid and returns the raw outputs, in grid order.
fn scan_grid(
    engine: &dyn BitemporalEngine,
    table: bitempo_core::TableId,
    grid: &[(SysSpec, AppSpec)],
) -> Vec<bitempo_engine::api::ScanOutput> {
    grid.iter()
        .map(|(sys, app)| engine.scan(table, sys, app, &[]).unwrap())
        .collect()
}

/// Oracle vs indexed comparison for one engine: record the full-scan
/// answers under `none()`, then re-run the same grid with the temporal
/// index at `workers ∈ {1, 4}` and demand byte-identical rows.
fn assert_indexed_matches_oracle(
    kind: SystemKind,
    engine: &mut dyn BitemporalEngine,
    table: bitempo_core::TableId,
    grid: &[(SysSpec, AppSpec)],
) -> bool {
    engine
        .apply_tuning(&TuningConfig::none().with_workers(1))
        .unwrap();
    let oracle = scan_grid(engine, table, grid);
    let mut probed = false;
    for workers in [1usize, 4] {
        engine
            .apply_tuning(&TuningConfig::temporal().with_workers(workers))
            .unwrap();
        let indexed = scan_grid(engine, table, grid);
        for (i, (want, got)) in oracle.iter().zip(&indexed).enumerate() {
            assert_eq!(
                want.rows, got.rows,
                "{kind} workers={workers} grid[{i}] ({:?}): indexed scan must be \
                 byte-identical to the full-scan oracle",
                grid[i]
            );
            if matches!(got.access, AccessPath::TemporalProbe(_)) {
                probed = true;
            }
        }
    }
    // Leave the engine untuned for the caller.
    engine
        .apply_tuning(&TuningConfig::none().with_workers(1))
        .unwrap();
    probed
}

/// Deterministic deep history: a handful of keys superseded many times, so
/// early `AS OF` probes are far below the planner's selectivity threshold
/// and the temporal probe path *must* engage on every architecture.
#[test]
fn deep_history_probes_agree_with_full_scans_on_all_engines() {
    for kind in SystemKind::ALL {
        let mut engine = build_engine(kind);
        let table = engine.create_table(table_def()).unwrap();
        for id in 1..=3i64 {
            engine
                .insert(
                    table,
                    Row::new(vec![Value::Int(id), Value::Int(0)]),
                    Some(app((0, 99))),
                )
                .unwrap();
        }
        engine.commit();
        for i in 0..120i64 {
            engine
                .update(table, &Key::int(i % 3 + 1), &[(1, Value::Int(i))], None)
                .unwrap();
            engine.commit();
        }
        engine.checkpoint();
        let sys_now = engine.now().0;
        let grid = spec_grid(sys_now / 2, 50);
        let probed = assert_indexed_matches_oracle(kind, engine.as_mut(), table, &grid);
        assert!(
            probed,
            "{kind}: a 40:1 history should drive at least one grid scan through the \
             temporal probe path"
        );
    }
}

/// Same-transaction supersedes produce versions whose system period would be
/// the degenerate `[s, s)` — activated and invalidated by one commit. The
/// engines discard such versions (they were never visible for a full
/// instant), so no scan — `AS OF`, `ALL`, indexed or not — may surface them,
/// and the timeline's paired events at one timestamp must not resurrect them.
#[test]
fn degenerate_same_transaction_periods_never_surface() {
    for kind in SystemKind::ALL {
        let mut engine = build_engine(kind);
        let table = engine.create_table(table_def()).unwrap();
        engine
            .insert(
                table,
                Row::new(vec![Value::Int(1), Value::Int(0)]),
                Some(app((0, 99))),
            )
            .unwrap();
        engine.commit();
        // Depth first, so the probe path actually runs…
        for i in 0..80i64 {
            engine
                .update(table, &Key::int(1), &[(1, Value::Int(i))], None)
                .unwrap();
            engine.commit();
        }
        // …then two updates inside one transaction: the first's version is
        // born and superseded at the same commit instant.
        engine
            .update(table, &Key::int(1), &[(1, Value::Int(777))], None)
            .unwrap();
        engine
            .update(table, &Key::int(1), &[(1, Value::Int(888))], None)
            .unwrap();
        engine.commit();
        let degenerate_at = engine.now();
        engine.checkpoint();

        let mut grid = spec_grid(degenerate_at.0, 50);
        // Probe exactly the degenerate instant and just past it.
        grid.push((SysSpec::AsOf(degenerate_at), AppSpec::All));
        grid.push((SysSpec::AsOf(SysTime(degenerate_at.0 + 1)), AppSpec::All));
        grid.push((
            SysSpec::Range(Period::new(degenerate_at, SysTime::MAX)),
            AppSpec::All,
        ));
        assert_indexed_matches_oracle(kind, engine.as_mut(), table, &grid);

        // The intermediate value 777 was discarded at commit: it must be
        // invisible under every system-time spec, with or without the index.
        engine.apply_tuning(&TuningConfig::temporal()).unwrap();
        for sys in [SysSpec::Current, SysSpec::AsOf(degenerate_at), SysSpec::All] {
            let rows = engine.scan(table, &sys, &AppSpec::All, &[]).unwrap().rows;
            assert!(
                rows.iter().all(|r| r.get(1) != &Value::Int(777)),
                "{kind}: degenerate version surfaced under {sys:?}"
            );
        }
        let all = engine
            .scan(table, &SysSpec::All, &AppSpec::All, &[])
            .unwrap()
            .rows;
        assert!(
            all.iter().any(|r| r.get(1) == &Value::Int(888)),
            "{kind}: the surviving same-transaction version must be in ALL"
        );
    }
}

#[derive(Debug, Clone)]
enum Dml {
    Insert {
        id: i64,
        val: i64,
        app: (i64, i64),
    },
    Update {
        id: i64,
        val: i64,
        portion: Option<(i64, i64)>,
    },
    Delete {
        id: i64,
        portion: Option<(i64, i64)>,
    },
    Commit,
}

fn dml_strategy() -> impl Strategy<Value = Dml> {
    let id = 0i64..5;
    let val = 0i64..100;
    let span = (0i64..50, 0i64..50);
    let update = (id.clone(), val.clone(), proptest::option::of(span.clone()))
        .prop_map(|(id, val, portion)| Dml::Update { id, val, portion });
    // The vendored `prop_oneof!` has no weighted arms; repeating the update
    // strategy is the equivalent 3x bias toward version-producing DML.
    prop_oneof![
        (id.clone(), val, span.clone()).prop_map(|(id, val, app)| Dml::Insert { id, val, app }),
        update.clone(),
        update.clone(),
        update,
        (id, proptest::option::of(span)).prop_map(|(id, portion)| Dml::Delete { id, portion }),
        Just(Dml::Commit),
    ]
}

fn apply(engine: &mut dyn BitemporalEngine, table: bitempo_core::TableId, op: &Dml) {
    match op {
        Dml::Insert { id, val, app: a } => {
            engine
                .insert(
                    table,
                    Row::new(vec![Value::Int(*id), Value::Int(*val)]),
                    Some(app(*a)),
                )
                .unwrap();
        }
        Dml::Update { id, val, portion } => {
            engine
                .update(
                    table,
                    &Key::int(*id),
                    &[(1, Value::Int(*val))],
                    portion.map(app),
                )
                .unwrap();
        }
        Dml::Delete { id, portion } => {
            engine
                .delete(table, &Key::int(*id), portion.map(app))
                .unwrap();
        }
        Dml::Commit => {
            engine.commit();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any DML program, any probe point: attaching the temporal index (at
    /// one worker or four) never changes a single byte of any scan.
    #[test]
    fn random_programs_scan_identically_with_and_without_index(
        program in proptest::collection::vec(dml_strategy(), 1..50),
        probe_sys in 0u64..40,
        probe_app in 0i64..60,
    ) {
        for kind in SystemKind::ALL {
            let mut engine = build_engine(kind);
            let table = engine.create_table(table_def()).unwrap();
            for op in &program {
                apply(engine.as_mut(), table, op);
            }
            engine.commit();
            engine.checkpoint();
            let grid = spec_grid(probe_sys, probe_app);
            assert_indexed_matches_oracle(kind, engine.as_mut(), table, &grid);
        }
    }
}
