//! Cross-engine, cross-tuning equivalence: the strongest correctness lever
//! in the suite. All four engines and the generator oracle must agree on
//! every query, under every tuning configuration — indexes may change plans,
//! never answers.

use bitempo_core::{Period, SysTime};
use bitempo_dbgen::ScaleConfig;
use bitempo_engine::api::{AppSpec, SysSpec, TuningConfig};
use bitempo_engine::{build_engine, BitemporalEngine, SystemKind};
use bitempo_histgen::{loader, HistoryConfig};
use bitempo_workloads::{rows_approx_diff, sort_canonical, Ctx, QueryParams};

struct Setup {
    engines: Vec<(SystemKind, Box<dyn BitemporalEngine>)>,
    history: bitempo_histgen::History,
    params: QueryParams,
}

fn build() -> Setup {
    let data = bitempo_dbgen::generate(&ScaleConfig::with_h(0.002));
    let history = bitempo_histgen::generate_history(&data, &HistoryConfig::with_m(0.001));
    let mut engines = Vec::new();
    for kind in SystemKind::ALL {
        let mut engine = build_engine(kind);
        let ids = loader::load_initial(engine.as_mut(), &data).unwrap();
        loader::replay(engine.as_mut(), &ids, &history.archive, 1).unwrap();
        engine.checkpoint();
        engines.push((kind, engine));
    }
    let params = QueryParams::derive(engines[0].1.as_ref()).unwrap();
    Setup {
        engines,
        history,
        params,
    }
}

#[test]
fn scan_grid_matches_oracle_on_all_engines() {
    let setup = build();
    let p = &setup.params;
    let sys_specs = [
        SysSpec::Current,
        SysSpec::AsOf(p.sys_initial),
        SysSpec::AsOf(p.sys_mid),
        SysSpec::AsOf(p.sys_now),
        SysSpec::Range(Period::new(p.sys_initial, p.sys_mid)),
        SysSpec::Range(Period::new(p.sys_mid, SysTime::MAX)),
        SysSpec::All,
    ];
    let app_specs = [
        AppSpec::All,
        AppSpec::AsOf(p.app_mid),
        AppSpec::AsOf(p.app_late),
        AppSpec::Range(Period::new(p.app_mid, p.app_late)),
    ];
    for table in bitempo_dbgen::TPCH_TABLES {
        let idx = setup.history.db.table_index(table).unwrap();
        for sys in &sys_specs {
            for app in &app_specs {
                let mut want = setup.history.db.scan(idx, sys, app);
                sort_canonical(&mut want);
                for (kind, engine) in &setup.engines {
                    let id = engine.resolve(table).unwrap();
                    let mut got = engine.scan(id, sys, app, &[]).unwrap().rows;
                    sort_canonical(&mut got);
                    assert_eq!(got, want, "{kind} table {table} sys {sys:?} app {app:?}");
                }
            }
        }
    }
}

#[test]
fn tuning_never_changes_answers() {
    let mut setup = build();
    let p = setup.params.clone();
    let tunings: Vec<(&str, TuningConfig)> = vec![
        ("none", TuningConfig::none()),
        ("time", TuningConfig::time()),
        ("key_time", TuningConfig::key_time()),
        (
            "gist",
            TuningConfig {
                time_index: true,
                key_time_index: true,
                gist: true,
                ..Default::default()
            },
        ),
        (
            "value",
            TuningConfig {
                value_index: vec![
                    ("customer".into(), "c_acctbal".into()),
                    ("orders".into(), "o_totalprice".into()),
                ],
                ..Default::default()
            },
        ),
    ];

    // Reference answers under no tuning.
    let mut reference: Vec<Vec<bitempo_core::Row>> = Vec::new();
    {
        let engine = setup.engines[0].1.as_ref();
        let ctx = Ctx::new(engine).unwrap();
        reference.push(sorted(bitempo_workloads::tt::t1(
            &ctx,
            SysSpec::AsOf(p.sys_mid),
            AppSpec::AsOf(p.app_mid),
        )));
        reference.push(sorted(bitempo_workloads::key::k1(
            &ctx,
            &p.hot_customer,
            SysSpec::All,
            AppSpec::All,
        )));
        reference.push(sorted(bitempo_workloads::key::k6(
            &ctx,
            p.acctbal_band.0,
            p.acctbal_band.1,
            SysSpec::All,
            AppSpec::All,
        )));
        reference.push(sorted(bitempo_workloads::tpch::run_query(
            &ctx,
            6,
            &bitempo_workloads::tpch::Tt::app(p.app_mid),
        )));
        reference.push(sorted(bitempo_workloads::bitemporal::b3_variant(
            &ctx,
            5,
            55,
            p.app_mid,
            p.sys_initial,
        )));
    }

    for (label, tuning) in tunings {
        for (_, engine) in &mut setup.engines {
            engine.apply_tuning(&tuning).unwrap();
        }
        for (kind, engine) in &setup.engines {
            let ctx = Ctx::new(engine.as_ref()).unwrap();
            let got = [
                sorted(bitempo_workloads::tt::t1(
                    &ctx,
                    SysSpec::AsOf(p.sys_mid),
                    AppSpec::AsOf(p.app_mid),
                )),
                sorted(bitempo_workloads::key::k1(
                    &ctx,
                    &p.hot_customer,
                    SysSpec::All,
                    AppSpec::All,
                )),
                sorted(bitempo_workloads::key::k6(
                    &ctx,
                    p.acctbal_band.0,
                    p.acctbal_band.1,
                    SysSpec::All,
                    AppSpec::All,
                )),
                sorted(bitempo_workloads::tpch::run_query(
                    &ctx,
                    6,
                    &bitempo_workloads::tpch::Tt::app(p.app_mid),
                )),
                sorted(bitempo_workloads::bitemporal::b3_variant(
                    &ctx,
                    5,
                    55,
                    p.app_mid,
                    p.sys_initial,
                )),
            ];
            for (i, (g, w)) in got.iter().zip(&reference).enumerate() {
                if let Some(diff) = rows_approx_diff(g, w, 1e-9) {
                    panic!("{kind} under tuning '{label}', query {i}: {diff}");
                }
            }
        }
    }
}

fn sorted(rows: bitempo_core::Result<Vec<bitempo_core::Row>>) -> Vec<bitempo_core::Row> {
    let mut rows = rows.unwrap();
    sort_canonical(&mut rows);
    rows
}

/// Morsel-parallel scans must be *byte-identical* to sequential execution:
/// same rows in the same order, same access paths, same work counters. Runs
/// every engine through representative T (time travel), K (key/audit), and
/// R (range-timeslice) queries plus raw multi-spec scans, at `workers = 1`
/// and `workers = 4`, and compares entire outputs without sorting.
#[test]
fn parallel_scan_output_identical_to_sequential() {
    let mut setup = build();
    let p = setup.params.clone();

    #[allow(clippy::type_complexity)]
    let collect = |engine: &dyn BitemporalEngine| -> (
        Vec<bitempo_engine::api::ScanOutput>,
        Vec<Vec<bitempo_core::Row>>,
    ) {
        let ctx = Ctx::new(engine).unwrap();
        // Raw scans: full ScanOutput (rows + paths + metrics) under specs
        // that exercise current-only, point, range, and full-history access.
        let scans = [
            (SysSpec::Current, AppSpec::All),
            (SysSpec::AsOf(p.sys_mid), AppSpec::AsOf(p.app_mid)),
            (
                SysSpec::Range(Period::new(p.sys_initial, p.sys_mid)),
                AppSpec::All,
            ),
            (SysSpec::All, AppSpec::All),
        ]
        .iter()
        .map(|(sys, app)| ctx.scan_output(ctx.t.orders, sys, app, &[]).unwrap())
        .collect();
        // Workload queries across the T, K, and R groups.
        let queries = vec![
            bitempo_workloads::tt::t1(&ctx, SysSpec::AsOf(p.sys_mid), AppSpec::AsOf(p.app_mid))
                .unwrap(),
            bitempo_workloads::tt::t4(&ctx, SysSpec::AsOf(p.sys_mid)).unwrap(),
            bitempo_workloads::tt::t5_all(&ctx).unwrap(),
            bitempo_workloads::key::k1(&ctx, &p.hot_customer, SysSpec::All, AppSpec::All).unwrap(),
            bitempo_workloads::key::k6(
                &ctx,
                p.acctbal_band.0,
                p.acctbal_band.1,
                SysSpec::All,
                AppSpec::All,
            )
            .unwrap(),
            bitempo_workloads::range::r1(&ctx).unwrap(),
            bitempo_workloads::range::r2(&ctx, engine.now()).unwrap(),
        ];
        (scans, queries)
    };

    for i in 0..setup.engines.len() {
        let kind = setup.engines[i].0;
        setup.engines[i]
            .1
            .apply_tuning(&TuningConfig::none().with_workers(1))
            .unwrap();
        let (seq_scans, seq_queries) = collect(setup.engines[i].1.as_ref());
        setup.engines[i]
            .1
            .apply_tuning(&TuningConfig::none().with_workers(4))
            .unwrap();
        let (par_scans, par_queries) = collect(setup.engines[i].1.as_ref());

        for (j, (s, q)) in seq_scans.iter().zip(&par_scans).enumerate() {
            assert_eq!(s.rows, q.rows, "{kind} scan {j}: row order must match");
            assert_eq!(s.access, q.access, "{kind} scan {j}");
            assert_eq!(s.partition_paths, q.partition_paths, "{kind} scan {j}");
            assert_eq!(s.metrics, q.metrics, "{kind} scan {j}: counters must match");
        }
        assert_eq!(seq_queries, par_queries, "{kind}: T/K/R queries must match");
    }
}

#[test]
fn bulk_loaded_system_d_matches_replayed_engines() {
    let setup = build();
    let mut bulk = build_engine(SystemKind::D);
    loader::bulk_load(bulk.as_mut(), &setup.history.db).unwrap();
    let p = &setup.params;
    for table in bitempo_dbgen::TPCH_TABLES {
        let idx = setup.history.db.table_index(table).unwrap();
        for sys in [SysSpec::Current, SysSpec::AsOf(p.sys_mid), SysSpec::All] {
            let mut want = setup.history.db.scan(idx, &sys, &AppSpec::All);
            sort_canonical(&mut want);
            let id = bulk.resolve(table).unwrap();
            let mut got = bulk.scan(id, &sys, &AppSpec::All, &[]).unwrap().rows;
            sort_canonical(&mut got);
            assert_eq!(got, want, "bulk D, table {table}, {sys:?}");
        }
    }
}
