//! Tracing must be *inert*: enabling it may record, but must never change
//! answers, plans, or work counters — on any engine, at any worker count.
//! These tests compare entire `ScanOutput`s (rows in order, access paths,
//! metrics) with tracing off vs on, then check what the traces actually
//! contain and that the chrome-trace export is well formed.

use bitempo_core::obs;
use bitempo_core::Period;
use bitempo_dbgen::ScaleConfig;
use bitempo_engine::api::{AppSpec, ScanOutput, SysSpec, TuningConfig};
use bitempo_engine::{build_engine, BitemporalEngine, SystemKind};
use bitempo_histgen::{loader, HistoryConfig};
use bitempo_workloads::{Ctx, QueryParams};

struct Setup {
    engines: Vec<(SystemKind, Box<dyn BitemporalEngine>)>,
    params: QueryParams,
}

fn build() -> Setup {
    let data = bitempo_dbgen::generate(&ScaleConfig::with_h(0.002));
    let history = bitempo_histgen::generate_history(&data, &HistoryConfig::with_m(0.001));
    let mut engines = Vec::new();
    for kind in SystemKind::ALL {
        let mut engine = build_engine(kind);
        let ids = loader::load_initial(engine.as_mut(), &data).unwrap();
        loader::replay(engine.as_mut(), &ids, &history.archive, 1).unwrap();
        engine.checkpoint();
        engines.push((kind, engine));
    }
    let params = QueryParams::derive(engines[0].1.as_ref()).unwrap();
    Setup { engines, params }
}

fn collect(engine: &dyn BitemporalEngine, p: &QueryParams) -> Vec<ScanOutput> {
    let ctx = Ctx::new(engine).unwrap();
    [
        (SysSpec::Current, AppSpec::All),
        (SysSpec::AsOf(p.sys_mid), AppSpec::AsOf(p.app_mid)),
        (
            SysSpec::Range(Period::new(p.sys_initial, p.sys_mid)),
            AppSpec::All,
        ),
        (SysSpec::All, AppSpec::All),
    ]
    .iter()
    .map(|(sys, app)| ctx.scan_output(ctx.t.orders, sys, app, &[]).unwrap())
    .collect()
}

/// The core inertness contract: with tracing enabled, every engine at every
/// worker count produces byte-identical rows, access paths, and work
/// counters — and the recorded scan traces account for exactly the work the
/// `ScanMetrics` report.
#[test]
fn tracing_is_inert_on_every_engine_and_worker_count() {
    let mut setup = build();
    let p = setup.params.clone();
    for i in 0..setup.engines.len() {
        let kind = setup.engines[i].0;
        for workers in [1usize, 4] {
            setup.engines[i]
                .1
                .apply_tuning(&TuningConfig::none().with_workers(workers))
                .unwrap();
            let engine = setup.engines[i].1.as_ref();

            assert!(!obs::is_enabled(), "tracing must default to off");
            let plain = collect(engine, &p);

            obs::enable();
            let traced = collect(engine, &p);
            let log = obs::disable();

            for (j, (a, b)) in plain.iter().zip(&traced).enumerate() {
                assert_eq!(a.rows, b.rows, "{kind} w{workers} scan {j}: rows");
                assert_eq!(a.access, b.access, "{kind} w{workers} scan {j}: access");
                assert_eq!(
                    a.partition_paths, b.partition_paths,
                    "{kind} w{workers} scan {j}: partition paths"
                );
                assert_eq!(a.metrics, b.metrics, "{kind} w{workers} scan {j}: metrics");
            }

            // The traced pass recorded one ScanTrace per physical partition
            // scanned, labelled with this engine, and the per-partition
            // deltas sum back to exactly the ScanMetrics totals.
            assert!(!log.scans.is_empty(), "{kind} w{workers}: no scan traces");
            assert!(
                log.scans.iter().all(|t| t.engine == kind.to_string()),
                "{kind} w{workers}: wrong engine label in {:?}",
                log.scans
            );
            let total_partitions: usize = traced.iter().map(|o| o.partition_paths.len()).sum();
            assert_eq!(log.scans.len(), total_partitions, "{kind} w{workers}");
            let sum = |f: fn(&obs::ScanTrace) -> u64| log.scans.iter().map(f).sum::<u64>();
            let want = |f: fn(&ScanOutput) -> u64| traced.iter().map(f).sum::<u64>();
            assert_eq!(
                sum(|t| t.rows_emitted),
                want(|o| o.rows.len() as u64),
                "{kind} w{workers}: emitted rows"
            );
            assert_eq!(
                sum(|t| t.rows_visited),
                want(|o| o.metrics.rows_visited),
                "{kind} w{workers}: visited rows"
            );
            assert_eq!(
                sum(|t| t.versions_pruned),
                want(|o| o.metrics.versions_pruned),
                "{kind} w{workers}: pruned versions"
            );
            assert_eq!(
                sum(|t| t.index_probes),
                want(|o| o.metrics.index_probes),
                "{kind} w{workers}: index probes"
            );
        }
    }
}

/// Traces aggregate in the coordinator, so the recorded log has the same
/// shape whether morsels ran on one worker or four.
#[test]
fn traces_are_identical_across_worker_counts() {
    let mut setup = build();
    let p = setup.params.clone();
    for i in 0..setup.engines.len() {
        let kind = setup.engines[i].0;
        let mut per_worker = Vec::new();
        for workers in [1usize, 4] {
            setup.engines[i]
                .1
                .apply_tuning(&TuningConfig::none().with_workers(workers))
                .unwrap();
            obs::enable();
            let _ = collect(setup.engines[i].1.as_ref(), &p);
            per_worker.push(obs::disable());
        }
        let (one, four) = (&per_worker[0], &per_worker[1]);
        assert_eq!(one.scans.len(), four.scans.len(), "{kind}");
        for (a, b) in one.scans.iter().zip(&four.scans) {
            // Everything except timings and the worker count must agree.
            assert_eq!(a.table, b.table, "{kind}");
            assert_eq!(a.partition, b.partition, "{kind}");
            assert_eq!(a.access, b.access, "{kind}");
            assert_eq!(a.rows_visited, b.rows_visited, "{kind}");
            assert_eq!(a.rows_emitted, b.rows_emitted, "{kind}");
            assert_eq!(a.versions_pruned, b.versions_pruned, "{kind}");
            assert_eq!(a.index_probes, b.index_probes, "{kind}");
            assert_eq!(
                a.morsels, b.morsels,
                "{kind}: morsel count is deterministic"
            );
        }
    }
}

/// Operator and SQL spans show up in the log with their categories, and the
/// chrome-trace export is structurally sound JSON that Perfetto will load.
#[test]
fn spans_cover_engine_query_and_sql_layers() {
    use bitempo_core::{Column, DataType, Row, Schema, TableDef, TemporalClass, Value};
    let mut engine = build_engine(SystemKind::A);
    let def = TableDef::new(
        "items",
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("price", DataType::Double),
        ]),
        vec![0],
        TemporalClass::Degenerate,
        None,
    )
    .unwrap();
    let t = engine.create_table(def).unwrap();
    for (id, price) in [(1, 10.0), (2, 20.0), (3, 30.0)] {
        engine
            .insert(
                t,
                Row::new(vec![Value::Int(id), Value::Double(price)]),
                None,
            )
            .unwrap();
    }
    engine.commit();

    obs::enable();
    let out = bitempo_sql::run_sql(
        engine.as_mut(),
        "SELECT id, price FROM items WHERE price >= 15 ORDER BY id",
    )
    .unwrap();
    let log = obs::disable();
    assert_eq!(out.rows().len(), 2);

    let cats: Vec<&str> = log.spans.iter().map(|s| s.cat).collect();
    assert!(cats.contains(&"sql"), "no sql span in {cats:?}");
    assert!(cats.contains(&"engine"), "no engine span in {cats:?}");
    assert!(cats.contains(&"query"), "no query span in {cats:?}");
    assert!(
        log.spans
            .iter()
            .any(|s| s.cat == "sql" && s.name == "select items"),
        "missing select span: {:?}",
        log.spans
    );
    assert!(
        !log.scans.is_empty(),
        "the SELECT must trace its table scan"
    );

    let json = log.to_chrome_trace();
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.ends_with("}"));
    assert!(json.contains("\"cat\":\"sql\""));
    assert!(json.contains("\"cat\":\"scan\""));
    // Every event is a complete event with µs timestamps.
    assert!(json.contains("\"ph\":\"X\""));
}
