//! Integration-test crate for the TPC-BiH workspace; all tests live
//! in the `tests/` directory.
